#include <gtest/gtest.h>

#include "model/cqm.hpp"
#include "util/error.hpp"

namespace qulrb::model {
namespace {

State make_state(std::size_t n, unsigned bits) {
  State s(n);
  for (std::size_t i = 0; i < n; ++i) s[i] = (bits >> i) & 1u;
  return s;
}

CqmModel two_var_model() {
  CqmModel m;
  m.add_variable("x0");
  m.add_variable("x1");
  return m;
}

TEST(Cqm, VariableNames) {
  CqmModel m;
  const VarId a = m.add_variable("alpha");
  const VarId b = m.add_variable();
  EXPECT_EQ(m.variable_name(a), "alpha");
  EXPECT_EQ(m.variable_name(b), "");
  EXPECT_EQ(m.num_variables(), 2u);
}

TEST(Cqm, LinearObjective) {
  CqmModel m = two_var_model();
  m.add_objective_linear(0, 2.0);
  m.add_objective_linear(1, -1.0);
  m.add_objective_offset(0.5);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b01)), 2.5);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b10)), -0.5);
}

TEST(Cqm, QuadraticObjective) {
  CqmModel m = two_var_model();
  m.add_objective_quadratic(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b11)), 3.0);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b01)), 0.0);
}

TEST(Cqm, DiagonalQuadraticFoldsToLinear) {
  CqmModel m = two_var_model();
  m.add_objective_quadratic(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b10)), 4.0);
}

TEST(Cqm, SquaredGroupObjective) {
  CqmModel m = two_var_model();
  LinearExpr e(-1.0);
  e.add_term(0, 1.0);
  e.add_term(1, 2.0);
  m.add_squared_group(e, 3.0);
  // expr values: 00 -> -1, 01 -> 0, 10 -> 1, 11 -> 2; objective = 3 expr^2.
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b00)), 3.0);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b01)), 0.0);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b10)), 3.0);
  EXPECT_DOUBLE_EQ(m.objective_value(make_state(2, 0b11)), 12.0);
}

TEST(Cqm, ConstraintConstantFoldsIntoRhs) {
  CqmModel m = two_var_model();
  LinearExpr lhs(5.0);
  lhs.add_term(0, 1.0);
  const std::size_t c = m.add_constraint(lhs, Sense::LE, 6.0, "c");
  // Folded to: x0 <= 1.
  EXPECT_DOUBLE_EQ(m.constraints()[c].rhs, 1.0);
  EXPECT_DOUBLE_EQ(m.constraints()[c].lhs.constant(), 0.0);
  EXPECT_TRUE(m.is_feasible(make_state(2, 0b01)));
}

TEST(Cqm, ViolationSemantics) {
  EXPECT_DOUBLE_EQ(CqmModel::violation_of(Sense::LE, 3.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(CqmModel::violation_of(Sense::LE, 2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(CqmModel::violation_of(Sense::GE, 1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(CqmModel::violation_of(Sense::GE, 3.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(CqmModel::violation_of(Sense::EQ, 1.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(CqmModel::violation_of(Sense::EQ, 2.0, 2.0), 0.0);
}

TEST(Cqm, FeasibilityAndTotalViolation) {
  CqmModel m = two_var_model();
  LinearExpr sum;
  sum.add_term(0, 1.0);
  sum.add_term(1, 1.0);
  m.add_constraint(sum, Sense::EQ, 1.0, "pick-one");
  EXPECT_TRUE(m.is_feasible(make_state(2, 0b01)));
  EXPECT_TRUE(m.is_feasible(make_state(2, 0b10)));
  EXPECT_FALSE(m.is_feasible(make_state(2, 0b00)));
  EXPECT_FALSE(m.is_feasible(make_state(2, 0b11)));
  EXPECT_DOUBLE_EQ(m.total_violation(make_state(2, 0b11)), 1.0);
}

TEST(Cqm, ConstraintCountsBySense) {
  CqmModel m = two_var_model();
  LinearExpr a;
  a.add_term(0, 1.0);
  m.add_constraint(a, Sense::EQ, 1.0);
  LinearExpr b;
  b.add_term(1, 1.0);
  m.add_constraint(b, Sense::LE, 1.0);
  LinearExpr c;
  c.add_term(1, 1.0);
  m.add_constraint(c, Sense::GE, 0.0);
  EXPECT_EQ(m.num_constraints(), 3u);
  EXPECT_EQ(m.num_equality_constraints(), 1u);
  EXPECT_EQ(m.num_inequality_constraints(), 2u);
}

TEST(Cqm, GroupIncidenceMapsVariablesToGroups) {
  CqmModel m = two_var_model();
  LinearExpr g0;
  g0.add_term(0, 2.0);
  m.add_squared_group(g0, 1.0);
  LinearExpr g1;
  g1.add_term(0, 1.0);
  g1.add_term(1, -1.0);
  m.add_squared_group(g1, 1.0);
  const auto& inc = m.group_incidence();
  ASSERT_EQ(inc[0].size(), 2u);
  ASSERT_EQ(inc[1].size(), 1u);
  EXPECT_EQ(inc[1][0].index, 1u);
  EXPECT_DOUBLE_EQ(inc[1][0].coeff, -1.0);
}

TEST(Cqm, ConstraintIncidence) {
  CqmModel m = two_var_model();
  LinearExpr lhs;
  lhs.add_term(1, 4.0);
  m.add_constraint(lhs, Sense::LE, 3.0);
  const auto& inc = m.constraint_incidence();
  EXPECT_TRUE(inc[0].empty());
  ASSERT_EQ(inc[1].size(), 1u);
  EXPECT_DOUBLE_EQ(inc[1][0].coeff, 4.0);
}

TEST(Cqm, ObjectiveScalePositive) {
  CqmModel m = two_var_model();
  EXPECT_GT(m.objective_scale(), 0.0);  // never zero, even when empty
  LinearExpr g;
  g.add_term(0, 10.0);
  m.add_squared_group(g, 2.0);
  EXPECT_GE(m.objective_scale(), 200.0);
}

TEST(Cqm, OutOfRangeVariableThrows) {
  CqmModel m = two_var_model();
  EXPECT_THROW(m.add_objective_linear(5, 1.0), util::InvalidArgument);
  LinearExpr bad;
  bad.add_term(9, 1.0);
  EXPECT_THROW(m.add_constraint(bad, Sense::LE, 1.0), util::InvalidArgument);
  EXPECT_THROW(m.add_squared_group(bad, 1.0), util::InvalidArgument);
}

TEST(Cqm, StateSizeMismatchThrows) {
  CqmModel m = two_var_model();
  EXPECT_THROW(m.objective_value(make_state(1, 0)), util::InvalidArgument);
}

TEST(Cqm, SenseToString) {
  EXPECT_EQ(to_string(Sense::LE), "<=");
  EXPECT_EQ(to_string(Sense::GE), ">=");
  EXPECT_EQ(to_string(Sense::EQ), "==");
}

}  // namespace
}  // namespace qulrb::model
