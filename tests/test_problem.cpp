#include <gtest/gtest.h>

#include "lrp/metrics.hpp"
#include "lrp/problem.hpp"
#include "util/error.hpp"

namespace qulrb::lrp {
namespace {

TEST(Problem, PaperFigure7Values) {
  // The paper's running example: 4 processes, 5 tasks each, loads
  // 1.87/1.97/3.12/2.81 -> totals 9.35/9.85/15.6/14.05, L_max on P3.
  const LrpProblem p = LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);
  EXPECT_EQ(p.num_processes(), 4u);
  EXPECT_EQ(p.total_tasks(), 20);
  EXPECT_NEAR(p.load(0), 9.35, 1e-9);
  EXPECT_NEAR(p.load(2), 15.6, 1e-9);
  EXPECT_NEAR(p.max_load(), 15.6, 1e-9);
  EXPECT_NEAR(p.average_load(), (9.35 + 9.85 + 15.6 + 14.05) / 4.0, 1e-9);
}

TEST(Problem, ImbalanceRatioDefinition) {
  const LrpProblem p = LrpProblem::uniform({2.0, 1.0}, 10);
  // Loads 20/10, avg 15, R_imb = (20-15)/15 = 1/3.
  EXPECT_NEAR(p.imbalance_ratio(), 1.0 / 3.0, 1e-12);
}

TEST(Problem, BalancedInputHasZeroImbalance) {
  const LrpProblem p = LrpProblem::uniform({3.0, 3.0, 3.0}, 7);
  EXPECT_DOUBLE_EQ(p.imbalance_ratio(), 0.0);
}

TEST(Problem, ZeroLoadIsZeroImbalance) {
  const LrpProblem p = LrpProblem::uniform({0.0, 0.0}, 5);
  EXPECT_DOUBLE_EQ(p.imbalance_ratio(), 0.0);
}

TEST(Problem, UnequalTaskCounts) {
  const LrpProblem p({1.0, 2.0}, {3, 4});
  EXPECT_FALSE(p.has_equal_task_counts());
  EXPECT_EQ(p.total_tasks(), 7);
  EXPECT_DOUBLE_EQ(p.load(1), 8.0);
}

TEST(Problem, EqualTaskCountsDetected) {
  const LrpProblem p = LrpProblem::uniform({1.0, 2.0, 3.0}, 4);
  EXPECT_TRUE(p.has_equal_task_counts());
}

TEST(Problem, FlattenTasksGroupsByOrigin) {
  const LrpProblem p({1.5, 2.5}, {2, 3});
  const auto items = p.flatten_tasks();
  ASSERT_EQ(items.size(), 5u);
  EXPECT_DOUBLE_EQ(items[0], 1.5);
  EXPECT_DOUBLE_EQ(items[1], 1.5);
  EXPECT_DOUBLE_EQ(items[2], 2.5);
  EXPECT_DOUBLE_EQ(items[4], 2.5);
}

TEST(Problem, OriginOfMapsItemsBack) {
  const LrpProblem p({1.0, 2.0, 3.0}, {2, 1, 2});
  EXPECT_EQ(p.origin_of(0), 0u);
  EXPECT_EQ(p.origin_of(1), 0u);
  EXPECT_EQ(p.origin_of(2), 1u);
  EXPECT_EQ(p.origin_of(3), 2u);
  EXPECT_EQ(p.origin_of(4), 2u);
  EXPECT_THROW(p.origin_of(5), util::InvalidArgument);
}

TEST(Problem, RejectsMalformedInput) {
  EXPECT_THROW(LrpProblem({}, {}), util::InvalidArgument);
  EXPECT_THROW(LrpProblem({1.0}, {1, 2}), util::InvalidArgument);
  EXPECT_THROW(LrpProblem({-1.0}, {1}), util::InvalidArgument);
  EXPECT_THROW(LrpProblem({1.0}, {-1}), util::InvalidArgument);
  EXPECT_THROW(LrpProblem::uniform({1.0}, -5), util::InvalidArgument);
}

TEST(Problem, ZeroTasksAllowed) {
  const LrpProblem p = LrpProblem::uniform({1.0, 2.0}, 0);
  EXPECT_EQ(p.total_tasks(), 0);
  EXPECT_DOUBLE_EQ(p.max_load(), 0.0);
}

TEST(Metrics, ImbalanceRatioHelper) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_ratio({5.0, 5.0}), 0.0);
  EXPECT_NEAR(imbalance_ratio({20.0, 10.0}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(imbalance_ratio({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace qulrb::lrp
