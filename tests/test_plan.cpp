#include <gtest/gtest.h>

#include "classical/greedy.hpp"
#include "lrp/metrics.hpp"
#include "lrp/plan.hpp"
#include "util/error.hpp"

namespace qulrb::lrp {
namespace {

const LrpProblem kPaper = LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

TEST(Plan, IdentityIsValidAndMigratesNothing) {
  const MigrationPlan plan = MigrationPlan::identity(kPaper);
  EXPECT_NO_THROW(plan.validate(kPaper));
  EXPECT_EQ(plan.total_migrated(), 0);
  const auto loads = plan.new_loads(kPaper);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(loads[i], kPaper.load(i), 1e-12);
}

TEST(Plan, CountAccessors) {
  MigrationPlan plan(3);
  plan.set_count(0, 1, 4);
  plan.add_count(0, 1, 2);
  EXPECT_EQ(plan.count(0, 1), 6);
  EXPECT_EQ(plan.count(1, 0), 0);
}

TEST(Plan, ValidateRejectsNegativeEntries) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.set_count(0, 1, -1);
  EXPECT_THROW(plan.validate(kPaper), util::InvalidArgument);
  EXPECT_FALSE(plan.is_valid(kPaper));
}

TEST(Plan, ValidateRejectsLostTask) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.set_count(0, 0, 4);  // one task of P0 vanished
  EXPECT_THROW(plan.validate(kPaper), util::InvalidArgument);
}

TEST(Plan, ValidateRejectsDuplicatedTask) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.add_count(1, 0, 1);  // P0's tasks now count 6
  EXPECT_THROW(plan.validate(kPaper), util::InvalidArgument);
}

TEST(Plan, MigrationAccounting) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  // Move 2 tasks from P2 to P0 and 1 task from P3 to P1.
  plan.add_count(2, 2, -2);
  plan.add_count(0, 2, 2);
  plan.add_count(3, 3, -1);
  plan.add_count(1, 3, 1);
  EXPECT_NO_THROW(plan.validate(kPaper));
  EXPECT_EQ(plan.total_migrated(), 3);
  EXPECT_EQ(plan.migrated_from(2), 2);
  EXPECT_EQ(plan.migrated_from(3), 1);
  EXPECT_EQ(plan.migrated_to(0), 2);
  EXPECT_EQ(plan.migrated_to(1), 1);
  EXPECT_EQ(plan.tasks_hosted(0), 7);
  EXPECT_EQ(plan.tasks_hosted(2), 3);
}

TEST(Plan, NewLoadsUseOriginTaskLoad) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.add_count(2, 2, -2);
  plan.add_count(0, 2, 2);
  const auto loads = plan.new_loads(kPaper);
  EXPECT_NEAR(loads[0], 9.35 + 2 * 3.12, 1e-9);  // receives P2-loads
  EXPECT_NEAR(loads[2], 15.6 - 2 * 3.12, 1e-9);
}

TEST(Plan, FromTransfers) {
  const std::vector<classical::Transfer> transfers = {{2, 0, 2}, {3, 1, 1}};
  const MigrationPlan plan = MigrationPlan::from_transfers(kPaper, transfers);
  EXPECT_NO_THROW(plan.validate(kPaper));
  EXPECT_EQ(plan.count(0, 2), 2);
  EXPECT_EQ(plan.count(2, 2), 3);
  EXPECT_EQ(plan.count(1, 3), 1);
  EXPECT_EQ(plan.total_migrated(), 3);
}

TEST(Plan, FromTransfersRejectsBadIndices) {
  const std::vector<classical::Transfer> transfers = {{9, 0, 1}};
  EXPECT_THROW(MigrationPlan::from_transfers(kPaper, transfers),
               util::InvalidArgument);
}

TEST(Plan, FromPartitionIsValid) {
  const auto items = kPaper.flatten_tasks();
  const auto partition = classical::greedy_partition(items, 4);
  const MigrationPlan plan = MigrationPlan::from_partition(kPaper, partition);
  EXPECT_NO_THROW(plan.validate(kPaper));
  // Every task accounted for.
  std::int64_t hosted = 0;
  for (std::size_t i = 0; i < 4; ++i) hosted += plan.tasks_hosted(i);
  EXPECT_EQ(hosted, kPaper.total_tasks());
}

TEST(Plan, FromPartitionBinCountMustMatch) {
  const auto items = kPaper.flatten_tasks();
  const auto partition = classical::greedy_partition(items, 3);
  EXPECT_THROW(MigrationPlan::from_partition(kPaper, partition),
               util::InvalidArgument);
}

TEST(Plan, EvaluatePlanMetrics) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.add_count(2, 2, -2);
  plan.add_count(0, 2, 2);
  const RebalanceMetrics m = evaluate_plan(kPaper, plan);
  EXPECT_NEAR(m.imbalance_before, kPaper.imbalance_ratio(), 1e-12);
  EXPECT_NEAR(m.max_load_before, 15.6, 1e-9);
  EXPECT_EQ(m.total_migrated, 2);
  EXPECT_NEAR(m.migrated_per_process, 0.5, 1e-12);
  EXPECT_GT(m.speedup, 1.0);  // straggler was relieved
  EXPECT_LT(m.imbalance_after, m.imbalance_before);
}

TEST(Plan, IdentityMetricsAreNeutral) {
  const RebalanceMetrics m = evaluate_plan(kPaper, MigrationPlan::identity(kPaper));
  EXPECT_DOUBLE_EQ(m.speedup, 1.0);
  EXPECT_NEAR(m.imbalance_after, m.imbalance_before, 1e-12);
  EXPECT_EQ(m.total_migrated, 0);
}

TEST(Plan, ProcessCountMismatchRejected) {
  MigrationPlan plan(3);
  EXPECT_THROW(plan.validate(kPaper), util::InvalidArgument);
  EXPECT_THROW(plan.new_loads(kPaper), util::InvalidArgument);
}

TEST(Plan, ZeroProcessesRejected) {
  EXPECT_THROW(MigrationPlan(0), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb::lrp
