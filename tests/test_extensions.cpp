#include <gtest/gtest.h>

#include "lrp/iterative.hpp"
#include "lrp/kselect.hpp"
#include "lrp/qubo_solver.hpp"
#include "lrp/solver.hpp"
#include "runtime/work_stealing.hpp"
#include "util/error.hpp"

namespace qulrb {
namespace {

const lrp::LrpProblem kPaper = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

// -------------------------------------------------------- qubo solver ------

lrp::QuboSolverOptions qubo_options(std::int64_t k) {
  lrp::QuboSolverOptions options;
  options.k = k;
  options.sa.sweeps = 3000;
  options.sa.num_reads = 8;
  options.sa.seed = 13;
  return options;
}

TEST(QuboSolver, ProducesValidPlan) {
  lrp::QuboAnnealSolver solver(qubo_options(8));
  const lrp::SolveOutput out = solver.solve(kPaper);
  EXPECT_NO_THROW(out.plan.validate(kPaper));
  EXPECT_LE(out.plan.total_migrated(), 8);
}

TEST(QuboSolver, SlackBitsGrowTheModel) {
  lrp::QuboAnnealSolver solver(qubo_options(8));
  (void)solver.solve(kPaper);
  const auto& diag = solver.last_diagnostics();
  ASSERT_TRUE(diag.has_value());
  EXPECT_GT(diag->slack_variables, 0u);
  EXPECT_GT(diag->qubo_variables, diag->slack_variables);
  EXPECT_GT(diag->lambda_used, 0.0);
}

TEST(QuboSolver, UnbalancedMethodAddsNoSlack) {
  lrp::QuboSolverOptions options = qubo_options(8);
  options.penalty.inequality = model::InequalityMethod::kUnbalanced;
  lrp::QuboAnnealSolver solver(options);
  (void)solver.solve(kPaper);
  EXPECT_EQ(solver.last_diagnostics()->slack_variables, 0u);
}

TEST(QuboSolver, ImprovesBalance) {
  lrp::QuboAnnealSolver solver(qubo_options(16));
  const lrp::SolverReport report = lrp::run_and_evaluate(solver, kPaper);
  EXPECT_LT(report.metrics.imbalance_after, report.metrics.imbalance_before);
  EXPECT_TRUE(solver.last_diagnostics()->sample_feasible);
}

TEST(QuboSolver, FullVariantAlsoWorks) {
  lrp::QuboSolverOptions options = qubo_options(8);
  options.variant = lrp::CqmVariant::kFull;
  lrp::QuboAnnealSolver solver(options);
  const lrp::SolveOutput out = solver.solve(kPaper);
  EXPECT_NO_THROW(out.plan.validate(kPaper));
}

// ---------------------------------------------------- iterative LB ---------

TEST(Iterative, ApplyAndUniformizePreservesLoadAndCounts) {
  lrp::ProactLbSolver solver;
  const lrp::SolveOutput out = solver.solve(kPaper);
  const lrp::LrpProblem next =
      lrp::IterativeRebalancer::apply_and_uniformize(kPaper, out.plan);
  EXPECT_EQ(next.total_tasks(), kPaper.total_tasks());
  EXPECT_NEAR(next.total_load(), kPaper.total_load(), 1e-9);
  const auto loads = out.plan.new_loads(kPaper);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(next.load(i), loads[i], 1e-9);
    EXPECT_EQ(next.tasks_on(i), out.plan.tasks_hosted(i));
  }
}

TEST(Iterative, IdentityPlanKeepsProblem) {
  const lrp::LrpProblem next = lrp::IterativeRebalancer::apply_and_uniformize(
      kPaper, lrp::MigrationPlan::identity(kPaper));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(next.task_load(i), kPaper.task_load(i), 1e-12);
    EXPECT_EQ(next.tasks_on(i), kPaper.tasks_on(i));
  }
}

TEST(Iterative, KeepsImbalanceLowAcrossEpochs) {
  lrp::ProactLbSolver solver;
  lrp::DriftModel drift;
  drift.relative_sigma = 0.2;
  drift.seed = 5;
  const lrp::IterativeRebalancer loop(solver, drift);
  const lrp::IterativeResult result = loop.run(kPaper, 10);
  ASSERT_EQ(result.epochs.size(), 10u);
  // Epoch 0 starts imbalanced; afterwards each epoch starts from a
  // drifted-but-rebalanced state, so the post-balance ratio stays small.
  for (const auto& epoch : result.epochs) {
    EXPECT_LE(epoch.imbalance_after, epoch.imbalance_before + 1e-9);
  }
  EXPECT_LT(result.mean_imbalance_after, 0.15);
  EXPECT_GT(result.total_migrated, 0);
}

TEST(Iterative, DeterministicForSeed) {
  lrp::ProactLbSolver solver;
  lrp::DriftModel drift;
  drift.seed = 9;
  const lrp::IterativeRebalancer loop(solver, drift);
  const auto a = loop.run(kPaper, 5);
  const auto b = loop.run(kPaper, 5);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].imbalance_after, b.epochs[e].imbalance_after);
    EXPECT_EQ(a.epochs[e].migrated, b.epochs[e].migrated);
  }
}

// ------------------------------------------------------ work stealing ------

TEST(WorkStealing, BalancedInputNeedsNoSteals) {
  const lrp::LrpProblem p = lrp::LrpProblem::uniform({2.0, 2.0, 2.0}, 10);
  const auto r = runtime::WorkStealingSimulator(runtime::WorkStealingConfig{}).run(p);
  // All processes finish together (within one task length); steals may only
  // happen at the very end when queues drain simultaneously.
  EXPECT_NEAR(r.makespan_ms, 20.0, 2.0 + 1e-9);
}

TEST(WorkStealing, StealsReduceMakespanOnImbalance) {
  // One heavy process, three idle ones: stealing must beat no-balancing.
  const lrp::LrpProblem p({8.0, 0.0, 0.0, 0.0}, {16, 0, 0, 0});
  const auto r = runtime::WorkStealingSimulator(runtime::WorkStealingConfig{}).run(p);
  EXPECT_GT(r.total_steals, 0);
  EXPECT_LT(r.makespan_ms, 8.0 * 16.0);        // better than serial on P0
  EXPECT_GT(r.makespan_ms, 8.0 * 16.0 / 4.0);  // cannot beat perfect split
}

TEST(WorkStealing, AllWorkGetsExecuted) {
  const auto r = runtime::WorkStealingSimulator(runtime::WorkStealingConfig{}).run(kPaper);
  double busy = 0.0;
  for (double b : r.process_busy_ms) busy += b;
  EXPECT_NEAR(busy, kPaper.total_load(), 1e-6);
}

TEST(WorkStealing, StealLatencyHurts) {
  const lrp::LrpProblem p({8.0, 0.0, 0.0, 0.0}, {16, 0, 0, 0});
  runtime::WorkStealingConfig cheap;
  cheap.steal_request_ms = 0.0;
  cheap.comm.latency_ms = 0.0;
  runtime::WorkStealingConfig expensive;
  expensive.steal_request_ms = 5.0;
  const auto fast = runtime::WorkStealingSimulator(cheap).run(p);
  const auto slow = runtime::WorkStealingSimulator(expensive).run(p);
  EXPECT_LT(fast.makespan_ms, slow.makespan_ms);
}

TEST(WorkStealing, RejectsBadConfig) {
  runtime::WorkStealingConfig config;
  config.comp_threads = 0;
  EXPECT_THROW(runtime::WorkStealingSimulator(config).run(kPaper),
               util::InvalidArgument);
  config.comp_threads = 1;
  config.steal_fraction = 0.0;
  EXPECT_THROW(runtime::WorkStealingSimulator(config).run(kPaper),
               util::InvalidArgument);
}

TEST(WorkStealing, ThreadsSpeedExecution) {
  runtime::WorkStealingConfig one;
  one.comp_threads = 1;
  runtime::WorkStealingConfig four;
  four.comp_threads = 4;
  const auto slow = runtime::WorkStealingSimulator(one).run(kPaper);
  const auto fast = runtime::WorkStealingSimulator(four).run(kPaper);
  EXPECT_LT(fast.makespan_ms, slow.makespan_ms);
}

}  // namespace
}  // namespace qulrb
