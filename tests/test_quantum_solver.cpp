#include <gtest/gtest.h>

#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"

namespace qulrb::lrp {
namespace {

const LrpProblem kPaper = LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

QcqmOptions fast_options(CqmVariant variant, std::int64_t k) {
  QcqmOptions o;
  o.variant = variant;
  o.k = k;
  o.hybrid.num_restarts = 2;
  o.hybrid.sweeps = 400;
  o.hybrid.max_penalty_rounds = 2;
  o.hybrid.seed = 11;
  return o;
}

TEST(QcqmSolver, ProducesValidPlanBothVariants) {
  for (auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    QcqmSolver solver(fast_options(variant, 16));
    const SolveOutput out = solver.solve(kPaper);
    EXPECT_NO_THROW(out.plan.validate(kPaper)) << to_string(variant);
    EXPECT_LE(out.plan.total_migrated(), 16) << to_string(variant);
  }
}

TEST(QcqmSolver, ImprovesImbalance) {
  QcqmSolver solver(fast_options(CqmVariant::kReduced, 16));
  const SolverReport report = run_and_evaluate(solver, kPaper);
  EXPECT_LT(report.metrics.imbalance_after, report.metrics.imbalance_before);
  EXPECT_GT(report.metrics.speedup, 1.0);
}

TEST(QcqmSolver, RespectsTightMigrationBound) {
  QcqmSolver solver(fast_options(CqmVariant::kReduced, 2));
  const SolveOutput out = solver.solve(kPaper);
  EXPECT_NO_THROW(out.plan.validate(kPaper));
  EXPECT_LE(out.plan.total_migrated(), 2);
}

TEST(QcqmSolver, KZeroReturnsIdentity) {
  QcqmSolver solver(fast_options(CqmVariant::kReduced, 0));
  const SolveOutput out = solver.solve(kPaper);
  EXPECT_EQ(out.plan.total_migrated(), 0);
  EXPECT_TRUE(out.feasible);
}

TEST(QcqmSolver, DiagnosticsPopulated) {
  QcqmSolver solver(fast_options(CqmVariant::kFull, 8));
  (void)solver.solve(kPaper);
  const auto& diag = solver.last_diagnostics();
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->num_variables, 16u * 3u);  // M^2 * bits(5) = 16 * 3
  EXPECT_EQ(diag->num_constraints, 9u);      // M eq + M cap + 1 mig
  EXPECT_GT(diag->hybrid_stats.cpu_ms, 0.0);
}

TEST(QcqmSolver, NameReflectsVariant) {
  EXPECT_EQ(QcqmSolver(fast_options(CqmVariant::kReduced, 1)).name(), "Q_CQM1");
  EXPECT_EQ(QcqmSolver(fast_options(CqmVariant::kFull, 1)).name(), "Q_CQM2");
}

TEST(QcqmSolver, DeterministicForSeed) {
  QcqmSolver a(fast_options(CqmVariant::kReduced, 8));
  QcqmSolver b(fast_options(CqmVariant::kReduced, 8));
  const SolveOutput ra = a.solve(kPaper);
  const SolveOutput rb = b.solve(kPaper);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(ra.plan.count(i, j), rb.plan.count(i, j));
    }
  }
}

TEST(QcqmSolver, ReportsSimulatedQpuTime) {
  QcqmSolver solver(fast_options(CqmVariant::kReduced, 4));
  const SolveOutput out = solver.solve(kPaper);
  EXPECT_DOUBLE_EQ(out.qpu_ms, 32.0);
}

// ------------------------------------------------------------ repair -------

TEST(RepairPlan, ValidPlanUntouched) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  EXPECT_FALSE(repair_plan(kPaper, plan));
  EXPECT_EQ(plan.total_migrated(), 0);
}

TEST(RepairPlan, ClampsNegativeEntries) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.set_count(0, 1, -3);
  EXPECT_TRUE(repair_plan(kPaper, plan));
  EXPECT_NO_THROW(plan.validate(kPaper));
}

TEST(RepairPlan, FixesShortColumn) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  plan.set_count(1, 1, 2);  // lost 3 tasks of P1
  EXPECT_TRUE(repair_plan(kPaper, plan));
  EXPECT_NO_THROW(plan.validate(kPaper));
  EXPECT_EQ(plan.count(1, 1), 5);
}

TEST(RepairPlan, TrimsOversubscribedColumn) {
  MigrationPlan plan = MigrationPlan::identity(kPaper);
  // Column 0 claims 5 (diag) + 4 + 4 = 13 tasks but P0 only has 5.
  plan.set_count(1, 0, 4);
  plan.set_count(2, 0, 4);
  EXPECT_TRUE(repair_plan(kPaper, plan));
  EXPECT_NO_THROW(plan.validate(kPaper));
  std::int64_t column = 0;
  for (std::size_t i = 0; i < 4; ++i) column += plan.count(i, 0);
  EXPECT_EQ(column, 5);
}

TEST(KSelect, MatchesClassicalMigrationCounts) {
  const KSelection k = select_k(kPaper);
  ProactLbSolver proactlb;
  GreedySolver greedy;
  EXPECT_EQ(k.k1, proactlb.solve(kPaper).plan.total_migrated());
  EXPECT_EQ(k.k2, greedy.solve(kPaper).plan.total_migrated());
  EXPECT_LE(k.k1, k.k2);  // ProactLB is migration-frugal by design
}

TEST(ClassicalSolvers, AllProduceValidBalancedPlans) {
  GreedySolver greedy;
  KkSolver kk;
  ProactLbSolver proactlb;
  for (RebalanceSolver* solver :
       std::initializer_list<RebalanceSolver*>{&greedy, &kk, &proactlb}) {
    const SolverReport report = run_and_evaluate(*solver, kPaper);
    EXPECT_LE(report.metrics.imbalance_after, report.metrics.imbalance_before)
        << solver->name();
    EXPECT_GE(report.metrics.speedup, 1.0) << solver->name();
  }
}

TEST(ClassicalSolvers, GreedyAndKkMigrateMostTasks) {
  // Placement-oblivious repartitioning migrates ~N(M-1)/M tasks; ProactLB
  // migrates only the surplus.
  const LrpProblem p = LrpProblem::uniform({4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 50);
  GreedySolver greedy;
  ProactLbSolver proactlb;
  const auto g = greedy.solve(p).plan.total_migrated();
  const auto pl = proactlb.solve(p).plan.total_migrated();
  EXPECT_GT(g, 250);  // ~= 400 * 7/8 = 350
  EXPECT_LT(pl, 100);
  EXPECT_LT(pl, g / 3);
}

}  // namespace
}  // namespace qulrb::lrp
