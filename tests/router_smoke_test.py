#!/usr/bin/env python3
"""End-to-end smoke for the sharded serving tier: two qulrb_serve backends
behind one qulrb_router.

Exercises the full identity chain the router promises:
  - a routed solve comes back on the client's own correlation id;
  - {"op":"stats"} through the router aggregates the fleet (role, healthy
    count, per-backend stats spliced verbatim);
  - {"op":"trace"} through the router returns the backend's Perfetto
    document for the routed request, including the router-admission span —
    one routed request, one correlated trace;
  - killing a backend mid-fleet fails over: the next solve is still
    answered, and the fleet stats show one healthy backend left.

Usage: router_smoke_test.py <qulrb_serve> <qulrb_router> <base-port>
"""

import json
import signal
import socket
import subprocess
import sys
import time

SOLVE = (
    '{"op":"solve","id":%d,"loads":[30,4,4,4],"counts":[8,8,8,8],'
    '"k":4,"sweeps":300,"restarts":1,"seed":7,"simulate":true,'
    '"sim_iterations":2}\n'
)


def connect(port, attempts=100):
    for _ in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=10)
        except OSError:
            time.sleep(0.1)
    raise SystemExit("could not connect to port %d" % port)


def ask(port, line):
    s = connect(port)
    try:
        s.sendall(line.encode())
        return json.loads(s.makefile("rb").readline())
    finally:
        s.close()


def wait_for(predicate, what, attempts=100):
    for _ in range(attempts):
        if predicate():
            return
        time.sleep(0.1)
    raise SystemExit("timed out waiting for " + what)


def main():
    serve, router, base = sys.argv[1], sys.argv[2], int(sys.argv[3])
    front, b1, b2 = base, base + 1, base + 2
    procs = []
    try:
        for port in (b1, b2):
            procs.append(
                subprocess.Popen(
                    [serve, "--port", str(port), "--workers", "1",
                     "--trace", "8", "--quiet"],
                    stdout=subprocess.DEVNULL,
                )
            )
        procs.append(
            subprocess.Popen(
                [
                    router,
                    "--port", str(front),
                    "--backends", "%d,%d" % (b1, b2),
                    "--policy", "cache-affinity",
                    "--probe-ms", "25",
                    "--quiet",
                ]
            )
        )

        wait_for(
            lambda: ask(front, '{"op":"stats"}\n')["stats"]["healthy"] == 2,
            "both backends healthy",
        )

        # Routed solve answers on the client's own correlation id.
        doc = ask(front, SOLVE % 5)
        assert doc["id"] == 5, doc
        assert doc["outcome"] == "ok", doc

        # Fleet stats: router role, per-backend splice.
        stats = ask(front, '{"op":"stats"}\n')["stats"]
        assert stats["role"] == "router", stats
        assert stats["policy"] == "cache-affinity", stats
        assert stats["backends"] == 2 and stats["healthy"] == 2, stats
        assert len(stats["backend_stats"]) == 2, stats
        assert sum(
            b["stats"]["completed"] for b in stats["backend_stats"]
        ) >= 1, stats

        # One routed request, one correlated Perfetto document: the backend
        # minted the trace under the router's group id and the router's
        # admission latency opens the timeline.
        s = connect(front)
        s.sendall(b'{"op":"trace","n":8}\n')
        trace_line = s.makefile("rb").readline().decode()
        s.close()
        assert '"traces"' in trace_line, trace_line
        assert "req-" in trace_line, trace_line
        assert "router-admission" in trace_line, trace_line
        assert "queue-wait" in trace_line, trace_line

        # Router metrics exposition over the wire.
        s = connect(front)
        s.sendall(b'{"op":"metrics"}\n')
        metrics = json.loads(s.makefile("rb").readline())
        s.close()
        assert "qulrb_router_requests_total" in metrics["metrics"], metrics

        # Failover: hard-kill one backend; the next solve must still be
        # answered by the survivor (retry path), and the probes must mark
        # the fleet down to one healthy backend.
        procs[0].send_signal(signal.SIGKILL)
        procs[0].wait()
        doc = ask(front, SOLVE % 6)
        assert doc["id"] == 6, doc
        assert doc["outcome"] == "ok", doc
        wait_for(
            lambda: ask(front, '{"op":"stats"}\n')["stats"]["healthy"] == 1,
            "dead backend marked down",
        )

        # Router shutdown stops the front door only; the surviving backend
        # answers a direct shutdown afterwards.
        s = connect(front)
        s.sendall(b'{"op":"shutdown"}\n')
        s.close()
        assert procs[2].wait(timeout=20) == 0, "router exited non-zero"
        s = connect(b2)
        s.sendall(b'{"op":"shutdown"}\n')
        s.close()
        assert procs[1].wait(timeout=20) == 0, "backend exited non-zero"
        print("ok: routed solve, fleet stats, correlated trace, failover")
        return 0
    finally:
        for p in procs:
            if p.poll() is None:
                p.kill()


if __name__ == "__main__":
    sys.exit(main())
