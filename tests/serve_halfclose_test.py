#!/usr/bin/env python3
"""Regression test: abusive TCP clients must not wedge or kill qulrb_serve.

Three hostile clients in sequence against one server:
  1. half-close — send a solve, shut down the write side (server sees EOF
     while the solve is still running), never read the response;
  2. hard close — send a solve and close with SO_LINGER 0, so the server's
     response write hits a reset socket (EPIPE/ECONNRESET path);
  3. slow reader — send a solve and simply stop reading.

After all three, a well-behaved client connects and must still get a stats
response, proving no worker thread died to SIGPIPE and no callback is parked
forever on a dead peer's send buffer.

Usage: serve_halfclose_test.py <qulrb_serve-binary> <port>
"""

import json
import socket
import struct
import subprocess
import sys
import time

SOLVE = (
    b'{"op":"solve","id":%d,"loads":[20,2,2,2],"counts":[8,8,8,8],'
    b'"k":4,"sweeps":200,"restarts":1,"seed":3}\n'
)


def connect(port, attempts=50):
    for _ in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=5)
        except OSError:
            time.sleep(0.1)
    raise SystemExit("could not connect to qulrb_serve")


def main():
    serve, port = sys.argv[1], int(sys.argv[2])
    proc = subprocess.Popen(
        [serve, "--port", str(port), "--workers", "2", "--quiet"],
        stdout=subprocess.DEVNULL,
    )
    try:
        # 1. half-close: EOF arrives while the solve runs.
        s = connect(port)
        s.sendall(SOLVE % 1)
        s.shutdown(socket.SHUT_WR)
        s.close()

        # 2. hard close: linger(0) turns close() into a reset, so the
        # server's response write fails with EPIPE/ECONNRESET.
        s = connect(port)
        s.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        s.sendall(SOLVE % 2)
        s.close()

        # 3. slow reader: never read; the 2s SO_SNDTIMEO must unblock the
        # worker even if our receive window fills.
        slow = connect(port)
        slow.sendall(SOLVE % 3)

        time.sleep(1.0)  # let the solves finish and the writes fail

        # A polite client must still be served.
        s = connect(port)
        s.sendall(b'{"op":"stats"}\n')
        line = s.makefile("rb").readline()
        doc = json.loads(line)
        assert "stats" in doc, line
        assert doc["stats"]["completed"] >= 1, line
        s.sendall(b'{"op":"shutdown"}\n')
        s.close()
        slow.close()

        assert proc.wait(timeout=20) == 0, "server exited non-zero"
        print("ok: server survived half-closed, reset, and slow clients")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
