#include <gtest/gtest.h>

#include "lrp/solver.hpp"
#include "runtime/bsp_sim.hpp"
#include "runtime/chameleon.hpp"
#include "runtime/comm_model.hpp"
#include "util/error.hpp"

namespace qulrb::runtime {
namespace {

const lrp::LrpProblem kPaper = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

// ---------------------------------------------------------- comm model -----

TEST(CommModel, ZeroTasksCostNothing) {
  CommModel comm;
  EXPECT_DOUBLE_EQ(comm.transfer_ms(0), 0.0);
  EXPECT_DOUBLE_EQ(comm.transfer_ms(-3), 0.0);
}

TEST(CommModel, LatencyPlusBandwidth) {
  CommModel comm;
  comm.latency_ms = 1.0;
  comm.bytes_per_task = 100.0;
  comm.bandwidth_bytes_per_ms = 50.0;
  EXPECT_DOUBLE_EQ(comm.transfer_ms(1), 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(comm.transfer_ms(5), 1.0 + 10.0);
}

TEST(CommModel, BatchingBeatsPerTaskMessages) {
  CommModel comm;
  EXPECT_LT(comm.transfer_ms(10), 10.0 * comm.transfer_ms(1));
}

// ------------------------------------------------------------- bsp sim -----

TEST(BspSim, BaselineMakespanIsMaxLoad) {
  BspConfig config;
  config.comp_threads = 1;
  config.iterations = 1;
  const BspResult r = BspSimulator(config).run_baseline(kPaper);
  EXPECT_NEAR(r.first_iteration_ms, kPaper.max_load(), 1e-9);
  EXPECT_NEAR(r.steady_iteration_ms, kPaper.max_load(), 1e-9);
  EXPECT_DOUBLE_EQ(r.migration_overhead_ms, 0.0);
}

TEST(BspSim, BaselineImbalanceMatchesProblem) {
  const BspResult r = BspSimulator(BspConfig{}).run_baseline(kPaper);
  EXPECT_NEAR(r.compute_imbalance, kPaper.imbalance_ratio(), 1e-9);
}

TEST(BspSim, IdleTimeAccounting) {
  BspConfig config;
  config.comp_threads = 1;
  const BspResult r = BspSimulator(config).run_baseline(kPaper);
  // The straggler (P2, 15.6 ms) has zero idle; others wait for it.
  EXPECT_NEAR(r.processes[2].idle_ms, 0.0, 1e-9);
  EXPECT_NEAR(r.processes[0].idle_ms, 15.6 - 9.35, 1e-9);
}

TEST(BspSim, MultiThreadScaling) {
  // 4 uniform tasks of 1 ms on one process: 2 threads halve the makespan.
  const lrp::LrpProblem p = lrp::LrpProblem::uniform({1.0, 1.0}, 4);
  BspConfig one;
  one.comp_threads = 1;
  BspConfig two;
  two.comp_threads = 2;
  EXPECT_NEAR(BspSimulator(one).run_baseline(p).steady_iteration_ms, 4.0, 1e-9);
  EXPECT_NEAR(BspSimulator(two).run_baseline(p).steady_iteration_ms, 2.0, 1e-9);
}

TEST(BspSim, RebalancedRunIsFasterOverIterations) {
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  BspConfig config;
  config.iterations = 50;
  const BspSimulator sim(config);
  const BspResult base = sim.run_baseline(kPaper);
  const BspResult rebal = sim.run(kPaper, out.plan);
  EXPECT_LT(rebal.total_ms, base.total_ms);
  EXPECT_LT(rebal.steady_iteration_ms, base.steady_iteration_ms);
}

TEST(BspSim, MigrationTrafficCostsTime) {
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  // Without a dedicated comm thread the serialization cost is exposed.
  BspConfig config;
  config.overlap_migration = false;
  const BspResult r = BspSimulator(config).run(kPaper, out.plan);
  EXPECT_GT(r.migration_overhead_ms, 0.0);
  EXPECT_GT(r.first_iteration_ms, r.steady_iteration_ms);
  std::int64_t sent = 0, received = 0;
  for (const auto& p : r.processes) {
    sent += p.tasks_sent;
    received += p.tasks_received;
  }
  EXPECT_EQ(sent, out.plan.total_migrated());
  EXPECT_EQ(received, out.plan.total_migrated());
}

TEST(BspSim, FewerMigrationsLessOverhead) {
  // The paper's headline motivation: ProactLB-sized migration traffic costs
  // less than Greedy-sized traffic.
  lrp::GreedySolver greedy;
  lrp::ProactLbSolver proactlb;
  const lrp::LrpProblem p =
      lrp::LrpProblem::uniform({4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 50);
  const BspSimulator sim{BspConfig{}};
  const BspResult g = sim.run(p, greedy.solve(p).plan);
  const BspResult pr = sim.run(p, proactlb.solve(p).plan);
  EXPECT_LT(pr.migration_overhead_ms, g.migration_overhead_ms);
}

TEST(BspSim, OverlapHidesSenderCost) {
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  BspConfig overlap;
  overlap.overlap_migration = true;
  BspConfig blocking;
  blocking.overlap_migration = false;
  const BspResult with = BspSimulator(overlap).run(kPaper, out.plan);
  const BspResult without = BspSimulator(blocking).run(kPaper, out.plan);
  EXPECT_LE(with.first_iteration_ms, without.first_iteration_ms);
}

TEST(BspSim, ParallelEfficiencyInUnitRange) {
  const BspResult r = BspSimulator(BspConfig{}).run_baseline(kPaper);
  EXPECT_GT(r.parallel_efficiency, 0.0);
  EXPECT_LE(r.parallel_efficiency, 1.0 + 1e-9);
}

TEST(BspSim, PerfectBalanceGivesFullEfficiency) {
  const lrp::LrpProblem p = lrp::LrpProblem::uniform({2.0, 2.0, 2.0}, 10);
  const BspResult r = BspSimulator(BspConfig{}).run_baseline(p);
  EXPECT_NEAR(r.parallel_efficiency, 1.0, 1e-9);
  EXPECT_NEAR(r.compute_imbalance, 0.0, 1e-12);
}

TEST(BspSim, InvalidPlanRejected) {
  lrp::MigrationPlan bad(4);
  EXPECT_THROW(BspSimulator(BspConfig{}).run(kPaper, bad), util::InvalidArgument);
}

TEST(BspSim, InvalidConfigRejected) {
  BspConfig config;
  config.comp_threads = 0;
  EXPECT_THROW(BspSimulator(config).run_baseline(kPaper), util::InvalidArgument);
  config.comp_threads = 1;
  config.iterations = 0;
  EXPECT_THROW(BspSimulator(config).run_baseline(kPaper), util::InvalidArgument);
}

TEST(BspSim, TotalTimeAddsIterations) {
  BspConfig config;
  config.iterations = 10;
  const BspResult r = BspSimulator(config).run_baseline(kPaper);
  EXPECT_NEAR(r.total_ms, r.first_iteration_ms + 9.0 * r.steady_iteration_ms, 1e-9);
}

// ----------------------------------------------------------- chameleon -----

TEST(MiniChameleon, BuildsProblemFromTasks) {
  MiniChameleon cham(3);
  cham.add_tasks(0, 10, 2.0);
  cham.add_tasks(1, 10, 1.0);
  cham.add_tasks(2, 10, 1.5);
  const lrp::LrpProblem p = cham.problem();
  EXPECT_EQ(p.num_processes(), 3u);
  EXPECT_DOUBLE_EQ(p.load(0), 20.0);
}

TEST(MiniChameleon, RejectsNonUniformLoadPerProcess) {
  MiniChameleon cham(2);
  cham.add_tasks(0, 5, 2.0);
  EXPECT_THROW(cham.add_tasks(0, 5, 3.0), util::InvalidArgument);
  EXPECT_NO_THROW(cham.add_tasks(0, 5, 2.0));  // same load is fine
}

TEST(MiniChameleon, TaskwaitReportsSpeedup) {
  MiniChameleon cham(4, BspConfig{.comp_threads = 1, .iterations = 20,
                                  .overlap_migration = true, .comm = {}});
  cham.add_tasks(0, 5, 1.87);
  cham.add_tasks(1, 5, 1.97);
  cham.add_tasks(2, 5, 3.12);
  cham.add_tasks(3, 5, 2.81);
  lrp::ProactLbSolver solver;
  const auto report = cham.distributed_taskwait(solver);
  EXPECT_EQ(report.solver_name, "ProactLB");
  EXPECT_GT(report.simulated_speedup, 1.0);
  EXPECT_LT(report.metrics.imbalance_after, report.metrics.imbalance_before);
}

TEST(MiniChameleon, InvalidProcessIndexRejected) {
  MiniChameleon cham(2);
  EXPECT_THROW(cham.add_tasks(5, 1, 1.0), util::InvalidArgument);
  EXPECT_THROW(cham.add_tasks(0, -1, 1.0), util::InvalidArgument);
  EXPECT_THROW(cham.add_tasks(0, 1, -1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb::runtime
