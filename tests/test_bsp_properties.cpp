// Property sweep over the BSP simulator: for random problems and random
// valid plans, the simulator must satisfy accounting identities that hold by
// construction of the model — work conservation, barrier dominance, overlap
// monotonicity, and agreement with the analytic metrics layer.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "lrp/metrics.hpp"
#include "runtime/bsp_sim.hpp"
#include "util/rng.hpp"

namespace qulrb::runtime {
namespace {

lrp::LrpProblem random_problem(util::Rng& rng, std::size_t m, std::int64_t n) {
  std::vector<double> loads(m);
  for (auto& w : loads) w = 0.2 + rng.next_double() * 5.0;
  return lrp::LrpProblem::uniform(std::move(loads), n);
}

lrp::MigrationPlan random_plan(util::Rng& rng, const lrp::LrpProblem& problem) {
  lrp::MigrationPlan plan = lrp::MigrationPlan::identity(problem);
  const std::size_t m = problem.num_processes();
  for (int move = 0; move < static_cast<int>(2 * m); ++move) {
    const auto from = static_cast<std::size_t>(rng.next_below(m));
    const auto to = static_cast<std::size_t>(rng.next_below(m));
    if (from == to || plan.count(from, from) <= 0) continue;
    const std::int64_t count = rng.next_in(1, plan.count(from, from));
    plan.add_count(from, from, -count);
    plan.add_count(to, from, count);
  }
  return plan;
}

class BspProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::int64_t, int>> {};

TEST_P(BspProperty, AccountingIdentitiesHold) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 613 + m * 5 +
                static_cast<std::uint64_t>(n));
  const lrp::LrpProblem problem = random_problem(rng, m, n);
  const lrp::MigrationPlan plan = random_plan(rng, problem);

  BspConfig config;
  config.comp_threads = 1 + static_cast<std::size_t>(rng.next_below(4));
  config.iterations = 3;
  const BspResult r = BspSimulator(config).run(problem, plan);

  // 1. Work conservation: executed compute equals the problem's total load.
  double busy = 0.0;
  std::int64_t executed = 0, sent = 0, received = 0;
  for (const auto& p : r.processes) {
    busy += p.compute_ms;
    executed += p.tasks_executed;
    sent += p.tasks_sent;
    received += p.tasks_received;
  }
  EXPECT_NEAR(busy, problem.total_load(), 1e-6);
  EXPECT_EQ(executed, problem.total_tasks());
  EXPECT_EQ(sent, plan.total_migrated());
  EXPECT_EQ(received, plan.total_migrated());

  // 2. Barrier dominance: nobody finishes after the barrier; idle >= 0.
  for (const auto& p : r.processes) {
    EXPECT_LE(p.finish_ms, r.first_iteration_ms + 1e-9);
    EXPECT_GE(p.idle_ms, -1e-9);
  }

  // 3. First iteration (with traffic) >= steady iteration.
  EXPECT_GE(r.first_iteration_ms, r.steady_iteration_ms - 1e-9);
  EXPECT_NEAR(r.total_ms,
              r.first_iteration_ms + 2.0 * r.steady_iteration_ms, 1e-9);

  // 4. Steady-state agrees with the analytic metric layer at 1 thread.
  if (config.comp_threads == 1) {
    const auto loads = plan.new_loads(problem);
    const double analytic_max = *std::max_element(loads.begin(), loads.end());
    EXPECT_NEAR(r.steady_iteration_ms, analytic_max, 1e-9);
    EXPECT_NEAR(r.compute_imbalance, lrp::imbalance_ratio(loads), 1e-9);
  }

  // 5. Efficiency in (0, 1].
  EXPECT_GT(r.parallel_efficiency, 0.0);
  EXPECT_LE(r.parallel_efficiency, 1.0 + 1e-9);
}

TEST_P(BspProperty, OverlapNeverSlower) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 211 + m +
                static_cast<std::uint64_t>(n));
  const lrp::LrpProblem problem = random_problem(rng, m, n);
  const lrp::MigrationPlan plan = random_plan(rng, problem);

  BspConfig overlap;
  overlap.overlap_migration = true;
  BspConfig blocking = overlap;
  blocking.overlap_migration = false;
  const BspResult with = BspSimulator(overlap).run(problem, plan);
  const BspResult without = BspSimulator(blocking).run(problem, plan);
  EXPECT_LE(with.first_iteration_ms, without.first_iteration_ms + 1e-9);
  // Steady state is traffic-free, so the toggle must not matter there.
  EXPECT_NEAR(with.steady_iteration_ms, without.steady_iteration_ms, 1e-9);
}

TEST_P(BspProperty, MoreThreadsNeverSlower) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 401 + m +
                static_cast<std::uint64_t>(n));
  const lrp::LrpProblem problem = random_problem(rng, m, n);

  BspConfig one;
  one.comp_threads = 1;
  BspConfig four;
  four.comp_threads = 4;
  const double t1 = BspSimulator(one).run_baseline(problem).steady_iteration_ms;
  const double t4 = BspSimulator(four).run_baseline(problem).steady_iteration_ms;
  EXPECT_LE(t4, t1 + 1e-9);
  // With uniform tasks per process the speedup is bounded by the thread count.
  EXPECT_GE(t4, t1 / 4.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BspProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8),
                       ::testing::Values<std::int64_t>(3, 10, 40),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace qulrb::runtime
