#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quantum/statevector.hpp"
#include "util/error.hpp"

namespace qulrb::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, InitializesToZeroState) {
  StateVector psi(3);
  EXPECT_EQ(psi.dimension(), 8u);
  EXPECT_NEAR(psi.probability(0), 1.0, kTol);
  for (std::uint64_t z = 1; z < 8; ++z) EXPECT_NEAR(psi.probability(z), 0.0, kTol);
}

TEST(StateVector, QubitCountLimits) {
  EXPECT_THROW(StateVector(0), util::InvalidArgument);
  EXPECT_THROW(StateVector(27), util::InvalidArgument);
}

TEST(StateVector, XFlipsBit) {
  StateVector psi(2);
  psi.apply_x(0);
  EXPECT_NEAR(psi.probability(0b01), 1.0, kTol);
  psi.apply_x(1);
  EXPECT_NEAR(psi.probability(0b11), 1.0, kTol);
}

TEST(StateVector, HadamardCreatesUniformSuperposition) {
  StateVector psi(3);
  psi.apply_h_all();
  for (std::uint64_t z = 0; z < 8; ++z) {
    EXPECT_NEAR(psi.probability(z), 1.0 / 8.0, kTol);
  }
  EXPECT_NEAR(psi.norm_squared(), 1.0, kTol);
}

TEST(StateVector, HadamardIsSelfInverse) {
  StateVector psi(2);
  psi.apply_h(0);
  psi.apply_h(0);
  EXPECT_NEAR(psi.probability(0), 1.0, kTol);
}

TEST(StateVector, CnotEntangles) {
  // Bell state: H(0) then CNOT(0 -> 1).
  StateVector psi(2);
  psi.apply_h(0);
  psi.apply_cnot(0, 1);
  EXPECT_NEAR(psi.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(psi.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(psi.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(psi.probability(0b10), 0.0, kTol);
}

TEST(StateVector, CnotRequiresDistinctQubits) {
  StateVector psi(2);
  EXPECT_THROW(psi.apply_cnot(1, 1), util::InvalidArgument);
  EXPECT_THROW(psi.apply_cnot(0, 5), util::InvalidArgument);
}

TEST(StateVector, RxRotatesProbability) {
  StateVector psi(1);
  psi.apply_rx(0, std::numbers::pi);  // RX(pi)|0> = -i|1>
  EXPECT_NEAR(psi.probability(1), 1.0, kTol);
  psi.apply_rx(0, std::numbers::pi / 2.0);
  EXPECT_NEAR(psi.probability(0), 0.5, kTol);
}

TEST(StateVector, RzIsDiagonalPhaseOnly) {
  StateVector psi(1);
  psi.apply_h(0);
  psi.apply_rz(0, 1.234);
  EXPECT_NEAR(psi.probability(0), 0.5, kTol);  // probabilities unchanged
  EXPECT_NEAR(psi.probability(1), 0.5, kTol);
}

TEST(StateVector, RzzMatchesCnotRzCnotDecomposition) {
  const double theta = 0.731;
  StateVector direct(2);
  direct.apply_h_all();
  direct.apply_rzz(0, 1, theta);

  StateVector decomposed(2);
  decomposed.apply_h_all();
  decomposed.apply_cnot(0, 1);
  decomposed.apply_rz(1, theta);
  decomposed.apply_cnot(0, 1);

  for (std::size_t z = 0; z < 4; ++z) {
    EXPECT_NEAR(std::abs(direct.amplitudes()[z] - decomposed.amplitudes()[z]), 0.0,
                1e-12)
        << "z=" << z;
  }
}

TEST(StateVector, CzSymmetric) {
  StateVector a(2), b(2);
  a.apply_h_all();
  b.apply_h_all();
  a.apply_cz(0, 1);
  b.apply_cz(1, 0);
  for (std::size_t z = 0; z < 4; ++z) {
    EXPECT_NEAR(std::abs(a.amplitudes()[z] - b.amplitudes()[z]), 0.0, kTol);
  }
}

TEST(StateVector, DiagonalPhasesPreserveNorm) {
  StateVector psi(3);
  psi.apply_h_all();
  std::vector<double> phases(8);
  for (std::size_t z = 0; z < 8; ++z) phases[z] = 0.3 * static_cast<double>(z);
  psi.apply_diagonal_phases(phases);
  EXPECT_NEAR(psi.norm_squared(), 1.0, kTol);
  for (std::uint64_t z = 0; z < 8; ++z) {
    EXPECT_NEAR(psi.probability(z), 1.0 / 8.0, kTol);
  }
}

TEST(StateVector, ExpectationDiagonal) {
  StateVector psi(2);
  psi.apply_h_all();  // uniform: expectation = mean of values
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(psi.expectation_diagonal(values), 2.5, kTol);
}

TEST(StateVector, SampleFollowsDistribution) {
  StateVector psi(1);
  psi.apply_x(0);  // deterministic |1>
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(psi.sample(rng), 1u);
}

TEST(StateVector, SampleUniformCoversStates) {
  StateVector psi(2);
  psi.apply_h_all();
  util::Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[psi.sample(rng)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(StateVector, UnitaryPreservesNormOnRandomCircuit) {
  StateVector psi(4);
  util::Rng rng(11);
  for (int step = 0; step < 100; ++step) {
    const auto q = static_cast<std::size_t>(rng.next_below(4));
    switch (rng.next_below(5)) {
      case 0: psi.apply_h(q); break;
      case 1: psi.apply_rx(q, rng.next_double() * 3.0); break;
      case 2: psi.apply_rz(q, rng.next_double() * 3.0); break;
      case 3: psi.apply_ry(q, rng.next_double() * 3.0); break;
      default: {
        const auto t = static_cast<std::size_t>(rng.next_below(4));
        if (t != q) psi.apply_cnot(q, t);
        break;
      }
    }
  }
  EXPECT_NEAR(psi.norm_squared(), 1.0, 1e-9);
}

}  // namespace
}  // namespace qulrb::quantum
