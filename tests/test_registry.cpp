#include <gtest/gtest.h>

#include "classical/exact.hpp"
#include "classical/greedy.hpp"
#include "classical/local_search.hpp"
#include "lrp/kselect.hpp"
#include "lrp/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/samoa.hpp"

namespace qulrb {
namespace {

const lrp::LrpProblem kPaper = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

// ------------------------------------------------------------ registry -----

TEST(Registry, AllNamesInstantiate) {
  for (const auto& name : lrp::solver_names()) {
    lrp::SolverSpec spec;
    spec.name = name;
    spec.sweeps = 100;
    spec.restarts = 1;
    const auto solver = lrp::make_solver(spec, kPaper);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_FALSE(solver->name().empty()) << name;
  }
}

TEST(Registry, UnknownNameRejected) {
  lrp::SolverSpec spec;
  spec.name = "dwave";
  EXPECT_THROW(lrp::make_solver(spec, kPaper), util::InvalidArgument);
}

TEST(Registry, AutomaticKSelection) {
  const lrp::KSelection k = lrp::select_k(kPaper);
  lrp::SolverSpec frugal;
  frugal.name = "qcqm1";
  frugal.sweeps = 400;
  frugal.restarts = 1;
  const auto solver = lrp::make_solver(frugal, kPaper);
  const lrp::SolveOutput out = solver->solve(kPaper);
  EXPECT_LE(out.plan.total_migrated(), k.k1);

  lrp::SolverSpec relaxed = frugal;
  relaxed.relaxed_k = true;
  const auto solver2 = lrp::make_solver(relaxed, kPaper);
  const lrp::SolveOutput out2 = solver2->solve(kPaper);
  EXPECT_LE(out2.plan.total_migrated(), k.k2);
}

TEST(Registry, ExplicitKOverridesAuto) {
  lrp::SolverSpec spec;
  spec.name = "qcqm1";
  spec.k = 1;
  spec.sweeps = 300;
  spec.restarts = 1;
  const auto solver = lrp::make_solver(spec, kPaper);
  const lrp::SolveOutput out = solver->solve(kPaper);
  EXPECT_LE(out.plan.total_migrated(), 1);
}

TEST(Registry, ClassicalSolversIgnoreK) {
  lrp::SolverSpec spec;
  spec.name = "greedy";
  spec.k = 0;  // must not constrain Greedy
  const auto solver = lrp::make_solver(spec, kPaper);
  const lrp::SolveOutput out = solver->solve(kPaper);
  EXPECT_GT(out.plan.total_migrated(), 0);
}

// --------------------------------------------------------- local search ----

TEST(LocalSearch, NeverWorseThanGreedy) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> items(24);
    for (auto& w : items) w = 1.0 + rng.next_double() * 99.0;
    const auto greedy = classical::greedy_partition(items, 4);
    const auto polished = classical::local_search_partition(items, 4);
    EXPECT_LE(polished.makespan(), greedy.makespan() + 1e-9) << "trial " << trial;
    EXPECT_TRUE(polished.is_valid(items.size()));
  }
}

TEST(LocalSearch, FixesTheClassicLptMiss) {
  // LPT yields 7/5 on {3,3,2,2,2}; one swap/move reaches the optimum 6/6.
  const std::vector<double> items = {3.0, 3.0, 2.0, 2.0, 2.0};
  const auto polished = classical::local_search_partition(items, 2);
  EXPECT_DOUBLE_EQ(polished.makespan(), 6.0);
}

TEST(LocalSearch, MatchesExactOnSmallInstances) {
  util::Rng rng(5);
  int exact_hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> items(10);
    for (auto& w : items) w = static_cast<double>(rng.next_in(1, 40));
    const auto polished = classical::local_search_partition(items, 3);
    const auto exact = classical::exact_partition(items, 3);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_GE(polished.makespan(), exact.partition.makespan() - 1e-9);
    if (polished.makespan() <= exact.partition.makespan() + 1e-9) ++exact_hits;
  }
  EXPECT_GE(exact_hits, 5);  // the polish usually closes the gap
}

TEST(LocalSearch, HandlesEdgeCases) {
  EXPECT_TRUE(classical::local_search_partition({}, 3).is_valid(0));
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(classical::local_search_partition(one, 1).makespan(), 5.0);
  EXPECT_THROW(classical::local_search_partition({}, 0), util::InvalidArgument);
}

// ---------------------------------------------------- samoa time series ----

TEST(SamoaTimeSeries, ProducesRequestedSteps) {
  workloads::SamoaConfig config;
  config.num_processes = 4;
  config.sections_per_process = 16;
  config.base_depth = 5;
  config.max_depth = 7;
  config.target_imbalance = 2.0;
  const auto series = workloads::make_samoa_time_series(config, 4);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0].problem.imbalance_ratio(), 2.0, 1e-6);  // calibrated
  for (const auto& step : series) {
    EXPECT_EQ(step.problem.num_processes(), 4u);
    EXPECT_EQ(step.problem.tasks_on(0), 16);
  }
}

TEST(SamoaTimeSeries, FrontActuallyMoves) {
  workloads::SamoaConfig config;
  config.num_processes = 4;
  config.sections_per_process = 16;
  config.base_depth = 5;
  config.max_depth = 7;
  config.target_imbalance = 0.0;  // raw loads so steps are comparable
  const auto series = workloads::make_samoa_time_series(config, 3, 0.8);
  // The refined region moves with the phase: per-process loads change.
  bool any_change = false;
  for (std::size_t p = 0; p < 4; ++p) {
    if (std::abs(series[0].problem.load(p) - series[2].problem.load(p)) > 1e-9) {
      any_change = true;
    }
  }
  EXPECT_TRUE(any_change);
}

TEST(SamoaTimeSeries, RejectsZeroSteps) {
  EXPECT_THROW(workloads::make_samoa_time_series({}, 0), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb
