#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "workloads/mxm.hpp"
#include "workloads/mxm_kernel.hpp"
#include "workloads/samoa.hpp"
#include "workloads/scenarios.hpp"

namespace qulrb::workloads {
namespace {

// ------------------------------------------------------------------ mxm ----

TEST(Mxm, CostModelIsCubic) {
  MxmCostModel model;
  const double t128 = model.task_ms(128);
  const double t256 = model.task_ms(256);
  EXPECT_NEAR(t256 / t128, 8.0, 1e-9);
}

TEST(Mxm, PaperSizesRange) {
  const auto sizes = paper_matrix_sizes();
  ASSERT_EQ(sizes.size(), 7u);
  EXPECT_EQ(sizes.front(), 128);
  EXPECT_EQ(sizes.back(), 512);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i] - sizes[i - 1], 64);
  }
}

TEST(Mxm, ProblemConstruction) {
  const std::vector<int> sizes = {128, 256};
  const auto p = make_mxm_problem(sizes, 50);
  EXPECT_EQ(p.num_processes(), 2u);
  EXPECT_EQ(p.tasks_on(0), 50);
  EXPECT_GT(p.task_load(1), p.task_load(0));
}

TEST(Mxm, RejectsBadInputs) {
  EXPECT_THROW(make_mxm_problem({}, 10), util::InvalidArgument);
  const std::vector<int> bad = {0};
  EXPECT_THROW(make_mxm_problem(bad, 10), util::InvalidArgument);
}

// ---------------------------------------------------------------- kernel ---

TEST(MxmKernel, CorrectProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  Matrix c(2, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]].
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t k = 0; k < 3; ++k) a.at(r, k) = v++;
  v = 7.0;
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t col = 0; col < 2; ++col) b.at(k, col) = v++;
  mxm(a, b, c);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MxmKernel, BlockedMatchesUnblocked) {
  const std::size_t n = 37;  // deliberately not a multiple of the block
  Matrix a(n, n), b(n, n), c_small(n, n), c_big(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = static_cast<double>((i * 7 + j * 3) % 11) - 5.0;
      b.at(i, j) = static_cast<double>((i * 5 + j * 2) % 13) - 6.0;
    }
  }
  mxm(a, b, c_small, 8);
  mxm(a, b, c_big, 1024);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c_small.at(i, j), c_big.at(i, j), 1e-9);
    }
  }
}

TEST(MxmKernel, AccumulatesIntoC) {
  Matrix a(1, 1, 2.0), b(1, 1, 3.0), c(1, 1, 10.0);
  mxm(a, b, c);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 16.0);  // 10 + 2*3
}

TEST(MxmKernel, DimensionMismatchRejected) {
  Matrix a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(mxm(a, b, c), util::InvalidArgument);
}

TEST(MxmKernel, MeasureAndCalibrate) {
  const double ms = measure_mxm_ms(64);
  EXPECT_GT(ms, 0.0);
  const double gflops = calibrate_gflops(64);
  EXPECT_GT(gflops, 0.01);
  EXPECT_LT(gflops, 1000.0);
}

// ----------------------------------------------------------------- samoa ---

TEST(Samoa, HilbertIndexIsBijective) {
  const std::uint32_t order = 4;  // 16 x 16
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      seen.insert(hilbert_index(order, x, y));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(Samoa, HilbertNeighborsAreClose) {
  // Consecutive curve indices map to grid-adjacent cells (locality — the
  // property that makes contiguous sections spatially compact).
  const std::uint32_t order = 5;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_index(1u << (2 * order));
  for (std::uint32_t y = 0; y < (1u << order); ++y) {
    for (std::uint32_t x = 0; x < (1u << order); ++x) {
      by_index[hilbert_index(order, x, y)] = {x, y};
    }
  }
  for (std::size_t d = 1; d < by_index.size(); ++d) {
    const auto [x0, y0] = by_index[d - 1];
    const auto [x1, y1] = by_index[d];
    const auto dist = std::abs(static_cast<int>(x1) - static_cast<int>(x0)) +
                      std::abs(static_cast<int>(y1) - static_cast<int>(y0));
    EXPECT_EQ(dist, 1) << "gap at curve position " << d;
  }
}

TEST(Samoa, DefaultWorkloadMatchesPaperSetup) {
  const SamoaWorkload w = make_samoa_workload();
  EXPECT_EQ(w.problem.num_processes(), 32u);
  EXPECT_EQ(w.problem.tasks_on(0), 208);
  EXPECT_NEAR(w.problem.imbalance_ratio(), 4.1994, 1e-6);
  EXPECT_GT(w.limited_cells, 0u);
  EXPECT_GT(w.total_cells, 32u * 208u);
}

TEST(Samoa, CalibrationDisabledKeepsRawImbalance) {
  SamoaConfig config;
  config.target_imbalance = 0.0;
  const SamoaWorkload w = make_samoa_workload(config);
  EXPECT_GT(w.problem.imbalance_ratio(), 0.0);  // refinement produces imbalance
}

TEST(Samoa, LoadsArePositive) {
  const SamoaWorkload w = make_samoa_workload();
  for (std::size_t i = 0; i < w.problem.num_processes(); ++i) {
    EXPECT_GT(w.problem.task_load(i), 0.0) << "process " << i;
  }
}

TEST(Samoa, LimiterRaisesFrontCellCost) {
  SamoaConfig with_limiter;
  SamoaConfig without;
  without.limiter_cost_factor = 1.0;
  without.target_imbalance = 0.0;
  with_limiter.target_imbalance = 0.0;
  const auto a = make_samoa_workload(with_limiter);
  const auto b = make_samoa_workload(without);
  // Same mesh, but the limiter concentrates cost -> higher imbalance.
  EXPECT_EQ(a.total_cells, b.total_cells);
  EXPECT_GT(a.problem.imbalance_ratio(), b.problem.imbalance_ratio());
}

TEST(Samoa, SmallerConfigScales) {
  SamoaConfig config;
  config.num_processes = 8;
  config.sections_per_process = 16;
  config.base_depth = 5;
  config.max_depth = 7;
  config.target_imbalance = 2.0;
  const SamoaWorkload w = make_samoa_workload(config);
  EXPECT_EQ(w.problem.num_processes(), 8u);
  EXPECT_NEAR(w.problem.imbalance_ratio(), 2.0, 1e-6);
}

TEST(Samoa, TooCoarseMeshRejected) {
  SamoaConfig config;
  config.base_depth = 2;  // 16 cells for 32*208 sections
  config.max_depth = 3;
  EXPECT_THROW(make_samoa_workload(config), util::InvalidArgument);
}

TEST(Samoa, Deterministic) {
  const auto a = make_samoa_workload();
  const auto b = make_samoa_workload();
  EXPECT_EQ(a.total_cells, b.total_cells);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(a.process_loads[i], b.process_loads[i]);
  }
}

// ------------------------------------------------------------- scenarios ---

TEST(Scenarios, ImbalanceLevelsAreMonotone) {
  const auto levels = scenarios::imbalance_levels();
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_NEAR(levels[0].problem.imbalance_ratio(), 0.0, 1e-12);  // Imb.0 flat
  for (std::size_t l = 1; l < levels.size(); ++l) {
    EXPECT_GT(levels[l].problem.imbalance_ratio(),
              levels[l - 1].problem.imbalance_ratio())
        << levels[l].name;
  }
  for (const auto& s : levels) {
    EXPECT_EQ(s.problem.num_processes(), 8u);
    EXPECT_EQ(s.problem.tasks_on(0), 50);
  }
}

TEST(Scenarios, NodeScalingSetups) {
  EXPECT_EQ(scenarios::node_scaling_counts(),
            (std::vector<std::size_t>{4, 8, 16, 32, 64}));
  for (std::size_t nodes : scenarios::node_scaling_counts()) {
    const auto s = scenarios::node_scaling(nodes);
    EXPECT_EQ(s.problem.num_processes(), nodes);
    EXPECT_EQ(s.problem.tasks_on(0), 100);
    EXPECT_GT(s.problem.imbalance_ratio(), 0.0);
  }
}

TEST(Scenarios, TaskScalingSetups) {
  EXPECT_EQ(scenarios::task_scaling_counts().front(), 8);
  EXPECT_EQ(scenarios::task_scaling_counts().back(), 2048);
  for (std::int64_t n : scenarios::task_scaling_counts()) {
    const auto s = scenarios::task_scaling(n);
    EXPECT_EQ(s.problem.num_processes(), 8u);
    EXPECT_EQ(s.problem.tasks_on(0), n);
  }
}

TEST(Scenarios, TaskScalingImbalanceIndependentOfN) {
  // R_imb depends only on the per-process loads' shape, not n.
  const auto a = scenarios::task_scaling(8);
  const auto b = scenarios::task_scaling(2048);
  EXPECT_NEAR(a.problem.imbalance_ratio(), b.problem.imbalance_ratio(), 1e-12);
}

TEST(Scenarios, SamoaScenarioMatchesTableV) {
  const auto s = scenarios::samoa_oscillating_lake();
  EXPECT_EQ(s.problem.num_processes(), 32u);
  EXPECT_EQ(s.problem.tasks_on(0), 208);
  EXPECT_NEAR(s.problem.imbalance_ratio(), 4.1994, 1e-6);
}

}  // namespace
}  // namespace qulrb::workloads
