#include <gtest/gtest.h>

#include "classical/proactlb.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::classical {
namespace {

UniformLoads make_loads(std::vector<double> w, std::vector<std::int64_t> n) {
  return UniformLoads{std::move(w), std::move(n)};
}

double imbalance(const std::vector<double>& loads) {
  double total = 0.0, max_load = 0.0;
  for (double l : loads) {
    total += l;
    max_load = std::max(max_load, l);
  }
  const double avg = total / static_cast<double>(loads.size());
  return avg > 0.0 ? (max_load - avg) / avg : 0.0;
}

TEST(UniformLoadsStruct, Aggregates) {
  const auto input = make_loads({2.0, 4.0}, {10, 5});
  EXPECT_DOUBLE_EQ(input.load_of(0), 20.0);
  EXPECT_DOUBLE_EQ(input.load_of(1), 20.0);
  EXPECT_DOUBLE_EQ(input.total_load(), 40.0);
  EXPECT_DOUBLE_EQ(input.average_load(), 20.0);
}

TEST(ProactLb, BalancedInputMigratesNothing) {
  const auto r = proactlb(make_loads({1.0, 1.0, 1.0, 1.0}, {10, 10, 10, 10}));
  EXPECT_EQ(r.total_migrated, 0);
  EXPECT_TRUE(r.transfers.empty());
}

TEST(ProactLb, SimpleTwoProcessTransfer) {
  // P0: 10 tasks x 2.0 = 20; P1: 10 x 1.0 = 10; avg 15 -> move ~2.5/2.0 tasks.
  const auto r = proactlb(make_loads({2.0, 1.0}, {10, 10}));
  EXPECT_GT(r.total_migrated, 0);
  EXPECT_LE(imbalance(r.new_loads), 0.1);
  for (const auto& t : r.transfers) {
    EXPECT_EQ(t.from, 0u);
    EXPECT_EQ(t.to, 1u);
  }
}

TEST(ProactLb, LoadConservation) {
  const auto input = make_loads({4.0, 1.0, 2.0, 0.5}, {20, 20, 20, 20});
  const auto r = proactlb(input);
  double before = input.total_load();
  double after = 0.0;
  for (double l : r.new_loads) after += l;
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(ProactLb, TransfersAreExecutable) {
  // Every giver sends at most the tasks it owns.
  const auto input = make_loads({10.0, 1.0, 1.0, 1.0}, {5, 5, 5, 5});
  const auto r = proactlb(input);
  std::vector<std::int64_t> sent(4, 0);
  for (const auto& t : r.transfers) {
    EXPECT_GE(t.count, 0);
    sent[t.from] += t.count;
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LE(sent[i], input.num_tasks[i]);
}

TEST(ProactLb, ReducesImbalanceOnRandomInputs) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w(8);
    for (auto& x : w) x = 0.5 + rng.next_double() * 9.5;
    const auto input = make_loads(w, std::vector<std::int64_t>(8, 50));
    const auto r = proactlb(input);
    std::vector<double> before(8);
    for (std::size_t i = 0; i < 8; ++i) before[i] = input.load_of(i);
    EXPECT_LE(imbalance(r.new_loads), imbalance(before) + 1e-9) << "trial " << trial;
  }
}

TEST(ProactLb, MigratesFarFewerTasksThanFullRepartition) {
  // The defining property vs Greedy/KK: migration count ~ surplus/w, not N.
  const auto input = make_loads({2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
                                std::vector<std::int64_t>(8, 100));
  const auto r = proactlb(input);
  // Surplus of P0 = 200 - 112.5 = 87.5 -> ~44 tasks of load 2. Far below the
  // ~700 a from-scratch partitioner would migrate.
  EXPECT_GT(r.total_migrated, 20);
  EXPECT_LT(r.total_migrated, 100);
}

TEST(ProactLb, SearchSpaceBoundKRespected) {
  const auto input = make_loads({10.0, 1.0}, {100, 100});
  ProactLbParams params;
  params.max_tasks_per_process = 3;
  const auto r = proactlb(input, params);
  std::vector<std::int64_t> sent(2, 0);
  for (const auto& t : r.transfers) sent[t.from] += t.count;
  EXPECT_LE(sent[0], 3);
}

TEST(ProactLb, ZeroLoadProcessesHandled) {
  const auto r = proactlb(make_loads({0.0, 2.0}, {10, 10}));
  // P1 overloaded, P0 idle: some tasks should flow 1 -> 0.
  EXPECT_GT(r.total_migrated, 0);
  for (const auto& t : r.transfers) EXPECT_EQ(t.from, 1u);
}

TEST(ProactLb, SingleProcessNoop) {
  const auto r = proactlb(make_loads({5.0}, {10}));
  EXPECT_EQ(r.total_migrated, 0);
}

TEST(ProactLb, EmptyInput) {
  const auto r = proactlb(make_loads({}, {}));
  EXPECT_EQ(r.total_migrated, 0);
  EXPECT_TRUE(r.new_loads.empty());
}

TEST(ProactLb, RejectsMalformedInput) {
  EXPECT_THROW(proactlb(make_loads({1.0}, {1, 2})), util::InvalidArgument);
  EXPECT_THROW(proactlb(make_loads({-1.0}, {1})), util::InvalidArgument);
  EXPECT_THROW(proactlb(make_loads({1.0}, {-1})), util::InvalidArgument);
}

TEST(ProactLb, NewLoadsMatchTransferArithmetic) {
  const auto input = make_loads({3.0, 1.0, 1.0}, {30, 30, 30});
  const auto r = proactlb(input);
  std::vector<double> expected = {input.load_of(0), input.load_of(1), input.load_of(2)};
  for (const auto& t : r.transfers) {
    expected[t.from] -= static_cast<double>(t.count) * input.task_load[t.from];
    expected[t.to] += static_cast<double>(t.count) * input.task_load[t.from];
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r.new_loads[i], expected[i], 1e-9);
}

}  // namespace
}  // namespace qulrb::classical
