#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workloads/samoa.hpp"
#include "workloads/swe_kernel.hpp"

namespace qulrb::workloads {
namespace {

TEST(Swe, FlatLakeStaysFlat) {
  // The lake at rest is a steady state: no hump, no motion, nothing changes.
  SweGrid grid(16, 16);
  const double before = grid.total_volume();
  for (int s = 0; s < 10; ++s) (void)grid.step(0.001);
  EXPECT_NEAR(grid.total_volume(), before, 1e-9);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) {
      EXPECT_NEAR(grid.h(x, y), 1.0, 1e-9);
      EXPECT_NEAR(grid.hu(x, y), 0.0, 1e-12);
    }
  }
}

TEST(Swe, HumpInitializationShapes) {
  SweGrid grid(32, 32);
  grid.initialize_lake(0.5, 0.5, 0.2, 0.5);
  // Center raised, corners at base height.
  EXPECT_GT(grid.h(16, 16), 1.4);
  EXPECT_NEAR(grid.h(0, 0), 1.0, 1e-12);
  EXPECT_GT(grid.total_volume(), 32.0 * 32.0);  // more than the flat basin
}

TEST(Swe, VolumeApproximatelyConserved) {
  SweGrid grid(24, 24);
  grid.initialize_lake(0.4, 0.6, 0.25, 0.4);
  const double before = grid.total_volume();
  for (int s = 0; s < 50; ++s) (void)grid.step(0.002);
  // Lax-Friedrichs with reflective walls conserves mass up to the dry floor.
  EXPECT_NEAR(grid.total_volume(), before, before * 1e-6);
}

TEST(Swe, WaveSpreadsOutward) {
  SweGrid grid(32, 32);
  grid.initialize_lake(0.5, 0.5, 0.15, 0.5);
  const std::size_t active_before = grid.active_cells(1.0, 0.01);
  for (int s = 0; s < 40; ++s) (void)grid.step(0.002);
  const std::size_t active_after = grid.active_cells(1.0, 0.01);
  EXPECT_GT(active_after, active_before);  // the disturbed front grew
  // The peak has collapsed from the initial hump.
  EXPECT_LT(grid.h(16, 16), 1.5);
}

TEST(Swe, ReportedWaveSpeedIsPhysical) {
  SweGrid grid(16, 16);
  grid.initialize_lake(0.5, 0.5, 0.3, 0.3);
  const double speed = grid.step(0.001);
  // gravity wave speed sqrt(g*h) for h ~ 1.3 is ~3.6; flow adds a little.
  EXPECT_GT(speed, 3.0);
  EXPECT_LT(speed, 6.0);
}

TEST(Swe, DisturbanceDecaysTowardFlatLake) {
  // Lax-Friedrichs is strongly diffusive: the hump collapses and the state
  // relaxes toward the flat steady lake while conserving volume — the decay
  // that, in the real application, moves the refined/limited region and
  // changes per-section costs between output steps.
  SweGrid grid(24, 24);
  grid.initialize_lake(0.5, 0.5, 0.2, 0.4);
  const double center_initial = grid.h(12, 12);
  const double mean =
      grid.total_volume() / (24.0 * 24.0);  // conserved equilibrium level
  for (int s = 0; s < 300; ++s) (void)grid.step(0.002);
  const double center_final = grid.h(12, 12);
  EXPECT_LT(center_final, center_initial);
  EXPECT_NEAR(center_final, mean, 0.1);  // close to the flat equilibrium
}

TEST(Swe, MeasureStepMsPositive) {
  const double ms = measure_swe_step_ms(32, 2);
  EXPECT_GT(ms, 0.0);
  EXPECT_LT(ms, 1e4);
}

TEST(Swe, RejectsBadArguments) {
  EXPECT_THROW(SweGrid(2, 8), util::InvalidArgument);
  EXPECT_THROW(SweGrid(8, 8, 0.0), util::InvalidArgument);
  SweGrid grid(8, 8);
  EXPECT_THROW((void)grid.step(0.0), util::InvalidArgument);
  EXPECT_THROW((void)grid.h(9, 0), util::InvalidArgument);
}

TEST(Swe, CalibratesSamoaCellCost) {
  SamoaConfig config;
  config.num_processes = 4;
  config.sections_per_process = 16;
  config.base_depth = 5;
  config.max_depth = 7;
  config.target_imbalance = 0.0;
  config.calibrate_with_swe_kernel = true;
  const SamoaWorkload w = make_samoa_workload(config);
  // Measured per-cell cost is strictly positive and flows into the loads.
  for (std::size_t p = 0; p < 4; ++p) EXPECT_GT(w.process_loads[p], 0.0);
}

}  // namespace
}  // namespace qulrb::workloads
