#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "workloads/mxm.hpp"

namespace qulrb {
namespace {

TEST(Histogram, CountsLandInCorrectBins) {
  util::Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.9);   // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  util::Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, UpperBoundGoesToLastBin) {
  util::Histogram h(0.0, 1.0, 2);
  h.add(1.0);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, FromDataCoversRange) {
  const std::vector<double> xs = {2.0, 4.0, 8.0};
  const auto h = util::Histogram::from_data(xs, 3);
  EXPECT_DOUBLE_EQ(h.lo(), 2.0);
  EXPECT_DOUBLE_EQ(h.hi(), 8.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, DegenerateDataHandled) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  const auto h = util::Histogram::from_data(xs, 4);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 3u);  // everything in the first bin of [5, 6]
}

TEST(Histogram, BinCenters) {
  util::Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW(h.bin_center(5), util::InvalidArgument);
}

TEST(Histogram, PrintRendersBars) {
  util::Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string text = h.to_string(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bin full width
  EXPECT_NE(text.find(" 2\n"), std::string::npos);
  EXPECT_NE(text.find(" 1\n"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(util::Histogram(0.0, 1.0, 0), util::InvalidArgument);
  EXPECT_THROW(util::Histogram(1.0, 1.0, 3), util::InvalidArgument);
}

// ------------------------------------------------------ heavy-tail gen -----

TEST(HeavyTail, LoadsArePositiveAndSkewed) {
  const auto p = workloads::make_heavy_tail_problem(64, 10, 1.2, 7);
  EXPECT_EQ(p.num_processes(), 64u);
  double max_w = 0.0, min_w = 1e300;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_GE(p.task_load(i), 1.0);  // Pareto x_min
    max_w = std::max(max_w, p.task_load(i));
    min_w = std::min(min_w, p.task_load(i));
  }
  EXPECT_GT(max_w / min_w, 3.0);  // genuinely heavy-tailed
  EXPECT_GT(p.imbalance_ratio(), 0.5);
}

TEST(HeavyTail, LargerAlphaIsMoreUniform) {
  const auto heavy = workloads::make_heavy_tail_problem(128, 4, 1.0, 3);
  const auto light = workloads::make_heavy_tail_problem(128, 4, 8.0, 3);
  EXPECT_GT(heavy.imbalance_ratio(), light.imbalance_ratio());
}

TEST(HeavyTail, DeterministicPerSeed) {
  const auto a = workloads::make_heavy_tail_problem(8, 4, 1.5, 9);
  const auto b = workloads::make_heavy_tail_problem(8, 4, 1.5, 9);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.task_load(i), b.task_load(i));
  }
}

TEST(HeavyTail, RejectsBadParameters) {
  EXPECT_THROW(workloads::make_heavy_tail_problem(0, 4), util::InvalidArgument);
  EXPECT_THROW(workloads::make_heavy_tail_problem(4, 4, 0.0), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb
