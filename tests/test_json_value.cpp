#include <gtest/gtest.h>

#include "io/json_value.hpp"
#include "util/error.hpp"

namespace qulrb::io {
namespace {

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonValue, ParsesNestedContainers) {
  const JsonValue doc =
      JsonValue::parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_int(), 2);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_TRUE(doc.find("c")->find("d")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.find("c")->find("missing"), nullptr);
}

TEST(JsonValue, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(JsonValue::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(JsonValue, WhitespaceAndTrailingGarbage) {
  EXPECT_DOUBLE_EQ(JsonValue::parse("  \t\n 7 \r\n").as_number(), 7.0);
  EXPECT_THROW(JsonValue::parse("7 x"), util::InvalidArgument);
}

TEST(JsonValue, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "{1:2}", "[1 2]", "tru",
        "\"unterminated", "\"bad \x01 control\"", "01a", "nan", "--3",
        R"("\ud800")", "{\"a\":1,}"}) {
    EXPECT_THROW(JsonValue::parse(bad), util::InvalidArgument) << bad;
  }
}

TEST(JsonValue, TypeMismatchesThrow) {
  const JsonValue doc = JsonValue::parse(R"({"s":"x","n":1.5})");
  EXPECT_THROW(doc.find("s")->as_number(), util::InvalidArgument);
  EXPECT_THROW(doc.find("n")->as_string(), util::InvalidArgument);
  EXPECT_THROW(doc.find("n")->as_int(), util::InvalidArgument);  // not integral
  EXPECT_THROW(doc.as_array(), util::InvalidArgument);
}

TEST(JsonValue, LenientAccessorsFallBack) {
  const JsonValue doc = JsonValue::parse(R"({"n":2,"s":"x","b":true})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(doc.int_or("n", -1), 2);
  EXPECT_EQ(doc.string_or("s", ""), "x");
  // The fallback covers *missing* keys only; a present key of the wrong
  // type is a client error and throws.
  EXPECT_THROW(doc.string_or("n", "fallback"), util::InvalidArgument);
  EXPECT_TRUE(doc.bool_or("b", false));
  EXPECT_FALSE(doc.bool_or("missing", false));
}

TEST(JsonValue, ErrorMessagesCarryOffset) {
  try {
    JsonValue::parse(R"({"a": bad})");
    FAIL() << "expected a parse error";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace qulrb::io
