#include <gtest/gtest.h>

#include <sstream>

#include "anneal/cqm_anneal.hpp"
#include "classical/exact.hpp"
#include "classical/greedy.hpp"
#include "classical/rnp.hpp"
#include "model/lp_format.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb {
namespace {

// ------------------------------------------------------------------ rnp ----

TEST(Rnp, RequiresPowerOfTwoBins) {
  const std::vector<double> items = {1.0, 2.0};
  EXPECT_THROW(classical::rnp_partition(items, 3), util::InvalidArgument);
  EXPECT_THROW(classical::rnp_partition(items, 0), util::InvalidArgument);
  EXPECT_NO_THROW(classical::rnp_partition(items, 4));
}

TEST(Rnp, OneBinTakesEverything) {
  const std::vector<double> items = {3.0, 1.0};
  const auto r = classical::rnp_partition(items, 1);
  EXPECT_EQ(r.bins[0].size(), 2u);
  EXPECT_DOUBLE_EQ(r.makespan(), 4.0);
}

TEST(Rnp, TwoWayMatchesCkkOptimum) {
  const std::vector<double> items = {8.0, 7.0, 6.0, 5.0, 4.0};
  const auto r = classical::rnp_partition(items, 2);
  // CKK on this instance is optimal: spread 0 (15/15).
  EXPECT_DOUBLE_EQ(r.spread(), 0.0);
  EXPECT_TRUE(r.is_valid(items.size()));
}

TEST(Rnp, ValidAndCompetitiveOnRandomInputs) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> items(32);
    for (auto& w : items) w = 1.0 + rng.next_double() * 50.0;
    const auto rnp = classical::rnp_partition(items, 8);
    EXPECT_TRUE(rnp.is_valid(items.size()));
    const auto greedy = classical::greedy_partition(items, 8);
    // RNP is usually close to Greedy; never catastrophically worse.
    EXPECT_LT(rnp.makespan(), greedy.makespan() * 1.5) << "trial " << trial;
  }
}

TEST(Rnp, NearOptimalOnTinyInstances) {
  util::Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> items(12);
    for (auto& w : items) w = static_cast<double>(rng.next_in(1, 30));
    const auto rnp = classical::rnp_partition(items, 4);
    const auto exact = classical::exact_partition(items, 4);
    ASSERT_TRUE(exact.proven_optimal);
    // Recursive bisection is not optimal in general, but stays close here.
    EXPECT_LE(rnp.makespan(), exact.partition.makespan() * 1.3 + 1e-9);
  }
}

TEST(Rnp, EmptyInput) {
  const auto r = classical::rnp_partition({}, 4);
  EXPECT_TRUE(r.is_valid(0));
  EXPECT_DOUBLE_EQ(r.makespan(), 0.0);
}

// ------------------------------------------------------------ lp format ----

model::CqmModel lp_model() {
  model::CqmModel m;
  m.add_variable("a");
  m.add_variable("b");
  m.add_objective_linear(0, 2.0);
  m.add_objective_linear(1, -1.0);
  model::LinearExpr g(-3.0);
  g.add_term(0, 1.0);
  g.add_term(1, 1.0);
  m.add_squared_group(std::move(g), 1.0);
  model::LinearExpr cap;
  cap.add_term(0, 1.0);
  cap.add_term(1, 1.0);
  m.add_constraint(std::move(cap), model::Sense::LE, 2.0, "capacity");
  return m;
}

TEST(LpFormat, ContainsAllSections) {
  const std::string lp = model::to_lp_string(lp_model());
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
}

TEST(LpFormat, UsesVariableNamesAndLabels) {
  const std::string lp = model::to_lp_string(lp_model());
  EXPECT_NE(lp.find("capacity:"), std::string::npos);
  EXPECT_NE(lp.find(" a "), std::string::npos);
  EXPECT_NE(lp.find("<= 2"), std::string::npos);
}

TEST(LpFormat, SquaredGroupRendered) {
  const std::string lp = model::to_lp_string(lp_model());
  EXPECT_NE(lp.find("]^2"), std::string::npos);
  EXPECT_NE(lp.find("[ "), std::string::npos);
}

TEST(LpFormat, EmptyObjectiveRendersZero) {
  model::CqmModel m;
  m.add_variable("x");
  const std::string lp = model::to_lp_string(m);
  EXPECT_NE(lp.find("obj: 0"), std::string::npos);
}

TEST(LpFormat, AnonymousVariablesAndConstraintsGetNames) {
  model::CqmModel m;
  m.add_variable();  // unnamed
  model::LinearExpr lhs;
  lhs.add_term(0, 1.0);
  m.add_constraint(std::move(lhs), model::Sense::GE, 1.0);  // unlabeled
  const std::string lp = model::to_lp_string(m);
  EXPECT_NE(lp.find("v0"), std::string::npos);
  EXPECT_NE(lp.find("c0:"), std::string::npos);
}

// ---------------------------------------------------------- anneal trace ---

TEST(AnnealTrace, RecordsPerSweepData) {
  model::CqmModel m;
  for (int i = 0; i < 6; ++i) m.add_variable();
  for (model::VarId v = 0; v < 6; ++v) m.add_objective_linear(v, 1.0);
  model::LinearExpr sum;
  for (model::VarId v = 0; v < 6; ++v) sum.add_term(v, 1.0);
  m.add_constraint(std::move(sum), model::Sense::GE, 2.0);

  anneal::CqmAnnealParams params;
  params.sweeps = 50;
  util::Rng rng(3);
  anneal::AnnealTrace trace;
  const anneal::Sample s = anneal::CqmAnnealer(params).anneal_once(
      m, std::vector<double>(m.num_constraints(), 20.0), rng, {}, &trace);

  EXPECT_EQ(trace.best_energy_per_sweep.size(), 50u);
  EXPECT_EQ(trace.violation_per_sweep.size(), 50u);
  EXPECT_GT(trace.flip_attempts, 0u);
  EXPECT_GT(trace.flip_accepts, 0u);
  EXPECT_LE(trace.flip_accepts, trace.flip_attempts);
  EXPECT_GE(trace.flip_acceptance(), 0.0);
  EXPECT_LE(trace.flip_acceptance(), 1.0);

  // The incumbent track is monotone non-increasing.
  for (std::size_t i = 1; i < trace.best_energy_per_sweep.size(); ++i) {
    EXPECT_LE(trace.best_energy_per_sweep[i], trace.best_energy_per_sweep[i - 1] + 1e-9);
  }
  // The final incumbent matches the returned sample (objective + violations
  // are both zero-penalty at the optimum here).
  EXPECT_TRUE(s.feasible);
}

TEST(AnnealTrace, NullTraceIsNoOverheadPath) {
  model::CqmModel m;
  m.add_variable();
  m.add_objective_linear(0, -1.0);
  anneal::CqmAnnealParams params;
  params.sweeps = 10;
  util::Rng rng(1);
  const anneal::Sample s = anneal::CqmAnnealer(params).anneal_once(
      m, std::vector<double>{}, rng);
  EXPECT_DOUBLE_EQ(s.energy, -1.0);
}

}  // namespace
}  // namespace qulrb
