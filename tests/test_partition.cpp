#include <gtest/gtest.h>

#include <numeric>

#include "classical/ckk.hpp"
#include "classical/exact.hpp"
#include "classical/greedy.hpp"
#include "classical/kk.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::classical {
namespace {

std::vector<double> random_items(util::Rng& rng, std::size_t n, double lo = 1.0,
                                 double hi = 100.0) {
  std::vector<double> items(n);
  for (auto& x : items) x = lo + rng.next_double() * (hi - lo);
  return items;
}

// -------------------------------------------------------------- greedy -----

TEST(Greedy, EmptyInput) {
  const auto r = greedy_partition({}, 3);
  EXPECT_EQ(r.bins.size(), 3u);
  EXPECT_DOUBLE_EQ(r.makespan(), 0.0);
  EXPECT_TRUE(r.is_valid(0));
}

TEST(Greedy, SingleBinTakesEverything) {
  const std::vector<double> items = {3.0, 1.0, 2.0};
  const auto r = greedy_partition(items, 1);
  EXPECT_EQ(r.bins[0].size(), 3u);
  EXPECT_DOUBLE_EQ(r.makespan(), 6.0);
}

TEST(Greedy, ZeroBinsRejected) {
  EXPECT_THROW(greedy_partition({}, 0), util::InvalidArgument);
}

TEST(Greedy, LptPlacementOrder) {
  // LPT on {3,3,2,2,2} / 2 bins: 3|3, 5|5, 7|5 — the known 7/6-suboptimal
  // case (optimum is 6/6).
  const std::vector<double> items = {3.0, 3.0, 2.0, 2.0, 2.0};
  const auto r = greedy_partition(items, 2);
  EXPECT_DOUBLE_EQ(r.makespan(), 7.0);
  EXPECT_DOUBLE_EQ(r.spread(), 2.0);
}

TEST(Greedy, PerfectSplitOnUniformItems) {
  const std::vector<double> items = {2.0, 2.0, 2.0, 2.0};
  const auto r = greedy_partition(items, 2);
  EXPECT_DOUBLE_EQ(r.makespan(), 4.0);
  EXPECT_DOUBLE_EQ(r.spread(), 0.0);
}

TEST(Greedy, ValidPartitionOnRandomInputs) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto items = random_items(rng, 50);
    const auto r = greedy_partition(items, 7);
    EXPECT_TRUE(r.is_valid(items.size()));
    const auto sums = compute_bin_sums(r.bins, items);
    for (std::size_t b = 0; b < 7; ++b) EXPECT_NEAR(sums[b], r.bin_sums[b], 1e-9);
  }
}

TEST(Greedy, GrahamBoundHolds) {
  // LPT guarantee: makespan <= (4/3 - 1/(3m)) * OPT.
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto items = random_items(rng, 12);
    const std::size_t m = 3;
    const auto greedy = greedy_partition(items, m);
    const auto optimal = exact_partition(items, m);
    ASSERT_TRUE(optimal.proven_optimal);
    const double bound = (4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(m))) *
                         optimal.partition.makespan();
    EXPECT_LE(greedy.makespan(), bound + 1e-9);
  }
}

TEST(Greedy, DeterministicOrdering) {
  const std::vector<double> items = {5.0, 5.0, 5.0, 5.0};
  const auto a = greedy_partition(items, 2);
  const auto b = greedy_partition(items, 2);
  EXPECT_EQ(a.bins, b.bins);
}

// ------------------------------------------------------------------ kk -----

TEST(Kk, EmptyInput) {
  const auto r = kk_partition({}, 4);
  EXPECT_TRUE(r.is_valid(0));
  EXPECT_DOUBLE_EQ(r.makespan(), 0.0);
}

TEST(Kk, TwoWayClassicExample) {
  // {8,7,6,5,4} -> KK difference 2 for 2-way (known result).
  const std::vector<double> items = {8.0, 7.0, 6.0, 5.0, 4.0};
  const auto r = kk_partition(items, 2);
  EXPECT_TRUE(r.is_valid(items.size()));
  EXPECT_DOUBLE_EQ(r.spread(), 2.0);
}

TEST(Kk, ValidPartitionOnRandomInputs) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto items = random_items(rng, 40);
    const auto r = kk_partition(items, 5);
    EXPECT_TRUE(r.is_valid(items.size()));
    const auto sums = compute_bin_sums(r.bins, items);
    for (std::size_t b = 0; b < 5; ++b) EXPECT_NEAR(sums[b], r.bin_sums[b], 1e-9);
  }
}

TEST(Kk, PerfectSplitOnEvenInput) {
  // {5,5,4,4,3,3,3,3} into 2 bins (total 30, perfect split 15).
  const std::vector<double> items = {5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 3.0, 3.0};
  const auto kk = kk_partition(items, 2);
  EXPECT_DOUBLE_EQ(kk.spread(), 0.0);
}

TEST(Kk, SumsConservedAcrossBins) {
  util::Rng rng(4);
  const auto items = random_items(rng, 30);
  const double total = std::accumulate(items.begin(), items.end(), 0.0);
  const auto r = kk_partition(items, 6);
  const double sum_of_bins = std::accumulate(r.bin_sums.begin(), r.bin_sums.end(), 0.0);
  EXPECT_NEAR(total, sum_of_bins, 1e-6);
}

TEST(Kk, MoreBinsThanItems) {
  const std::vector<double> items = {2.0, 1.0};
  const auto r = kk_partition(items, 5);
  EXPECT_TRUE(r.is_valid(2));
  EXPECT_DOUBLE_EQ(r.makespan(), 2.0);
}

TEST(Kk, ZeroBinsRejected) {
  EXPECT_THROW(kk_partition({}, 0), util::InvalidArgument);
}

// ----------------------------------------------------------------- ckk -----

TEST(Ckk, PerfectPartitionFound) {
  const std::vector<double> items = {4.0, 5.0, 6.0, 7.0, 8.0};  // total 30
  const auto r = ckk_two_way(items);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.difference, 0.0);
  EXPECT_TRUE(r.partition.is_valid(items.size()));
}

TEST(Ckk, OddTotalHasDifferenceOne) {
  const std::vector<double> items = {1.0, 2.0, 4.0};  // total 7, best diff 1
  const auto r = ckk_two_way(items);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.difference, 1.0);
}

TEST(Ckk, MatchesExactOnRandomInstances) {
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> items(10);
    for (auto& x : items) x = static_cast<double>(rng.next_in(1, 50));
    const auto ckk = ckk_two_way(items);
    const auto exact = exact_partition(items, 2);
    ASSERT_TRUE(ckk.proven_optimal);
    ASSERT_TRUE(exact.proven_optimal);
    const double exact_diff =
        std::abs(exact.partition.bin_sums[0] - exact.partition.bin_sums[1]);
    EXPECT_DOUBLE_EQ(ckk.difference, exact_diff) << "trial " << trial;
  }
}

TEST(Ckk, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(ckk_two_way({}).difference, 0.0);
  const std::vector<double> one = {5.0};
  const auto r = ckk_two_way(one);
  EXPECT_DOUBLE_EQ(r.difference, 5.0);
  EXPECT_TRUE(r.partition.is_valid(1));
}

TEST(Ckk, NodeLimitTruncates) {
  util::Rng rng(6);
  std::vector<double> items(30);
  for (auto& x : items) x = rng.next_double() * 1000.0 + 1.0;
  const auto r = ckk_two_way(items, 100);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_TRUE(r.partition.is_valid(items.size()));  // still returns something valid
}

TEST(Ckk, RejectsNegativeItems) {
  const std::vector<double> items = {1.0, -2.0};
  EXPECT_THROW(ckk_two_way(items), util::InvalidArgument);
}

// --------------------------------------------------------------- exact -----

TEST(Exact, TinyInstanceOptimal) {
  const std::vector<double> items = {4.0, 3.0, 2.0, 1.0};
  const auto r = exact_partition(items, 2);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.partition.makespan(), 5.0);
  EXPECT_TRUE(r.partition.is_valid(4));
}

TEST(Exact, NeverWorseThanGreedyOrKk) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> items(11);
    for (auto& x : items) x = static_cast<double>(rng.next_in(1, 30));
    const auto exact = exact_partition(items, 3);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_LE(exact.partition.makespan(),
              greedy_partition(items, 3).makespan() + 1e-9);
    EXPECT_LE(exact.partition.makespan(), kk_partition(items, 3).makespan() + 1e-9);
  }
}

TEST(Exact, LowerBoundRespected) {
  util::Rng rng(8);
  const auto items = random_items(rng, 10);
  const double total = std::accumulate(items.begin(), items.end(), 0.0);
  const auto r = exact_partition(items, 4);
  EXPECT_GE(r.partition.makespan(), total / 4.0 - 1e-9);
}

TEST(Exact, MoreBinsThanItemsIsMaxItem) {
  const std::vector<double> items = {7.0, 3.0};
  const auto r = exact_partition(items, 5);
  EXPECT_DOUBLE_EQ(r.partition.makespan(), 7.0);
}

TEST(Exact, NodeLimitStillReturnsValidPartition) {
  util::Rng rng(9);
  const auto items = random_items(rng, 30);
  const auto r = exact_partition(items, 4, 50);
  EXPECT_TRUE(r.partition.is_valid(items.size()));
}

// ---------------------------------------------------- PartitionResult ------

TEST(PartitionResult, ValidityDetectsMissingItem) {
  PartitionResult r;
  r.bins = {{0, 1}, {}};
  r.bin_sums = {2.0, 0.0};
  EXPECT_TRUE(r.is_valid(2));
  EXPECT_FALSE(r.is_valid(3));  // item 2 missing
}

TEST(PartitionResult, ValidityDetectsDuplicates) {
  PartitionResult r;
  r.bins = {{0, 1}, {1}};
  EXPECT_FALSE(r.is_valid(2));
}

TEST(PartitionResult, SpreadIsMaxMinusMin) {
  PartitionResult r;
  r.bin_sums = {5.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(r.makespan(), 8.0);
  EXPECT_DOUBLE_EQ(r.min_sum(), 2.0);
  EXPECT_DOUBLE_EQ(r.spread(), 6.0);
}

}  // namespace
}  // namespace qulrb::classical
