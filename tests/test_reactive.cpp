#include <gtest/gtest.h>

#include <numeric>

#include "mpirt/reactive.hpp"
#include "util/error.hpp"

namespace qulrb::mpirt {
namespace {

TEST(Reactive, BalancedInputExecutesEverythingLocally) {
  const lrp::LrpProblem p = lrp::LrpProblem::uniform({1.0, 1.0, 1.0, 1.0}, 8);
  const ReactiveResult r = run_reactive(p);
  std::int64_t total = 0;
  for (auto t : r.tasks_executed) total += t;
  EXPECT_EQ(total, p.total_tasks());
  const double work = std::accumulate(r.compute_ms.begin(), r.compute_ms.end(), 0.0);
  EXPECT_NEAR(work, p.total_load(), 1e-9);
}

TEST(Reactive, OffloadingRelievesTheStraggler) {
  // One heavy rank, three idle: offloading must spread the work.
  const lrp::LrpProblem p({4.0, 0.0, 0.0, 0.0}, {32, 0, 0, 0});
  const ReactiveResult r = run_reactive(p);
  EXPECT_GT(r.offload_requests, 0);
  EXPECT_GT(r.tasks_offloaded, 0);
  // The straggler sheds real work: its executed share is below 100%.
  EXPECT_LT(r.compute_ms[0], p.total_load() - 1e-9);
  EXPECT_LT(r.virtual_makespan_ms, p.total_load());
  // Nothing is lost or duplicated.
  const double work = std::accumulate(r.compute_ms.begin(), r.compute_ms.end(), 0.0);
  EXPECT_NEAR(work, p.total_load(), 1e-9);
  std::int64_t tasks = 0;
  for (auto t : r.tasks_executed) tasks += t;
  EXPECT_EQ(tasks, 32);
}

TEST(Reactive, ImbalanceDropsOnSkewedInstance) {
  // Strong skew so the offloading signal dominates scheduler noise (with
  // zero-cost tasks the exact steal timing is nondeterministic; on a mild
  // imbalance the measured ratio can wobble either way).
  const lrp::LrpProblem p = lrp::LrpProblem::uniform({4.0, 1.0, 1.0, 1.0}, 50);
  const ReactiveResult r = run_reactive(p);
  EXPECT_LT(r.measured_imbalance, p.imbalance_ratio());
  const double work = std::accumulate(r.compute_ms.begin(), r.compute_ms.end(), 0.0);
  EXPECT_NEAR(work, p.total_load(), 1e-6);
}

TEST(Reactive, BatchSizeControlsGranularity) {
  const lrp::LrpProblem p({4.0, 0.0, 0.0, 0.0}, {32, 0, 0, 0});
  ReactiveConfig small;
  small.batch_size = 1;
  ReactiveConfig large;
  large.batch_size = 16;
  const ReactiveResult a = run_reactive(p, small);
  const ReactiveResult b = run_reactive(p, large);
  // Both conserve work; the large-batch run needs no more requests.
  EXPECT_NEAR(std::accumulate(a.compute_ms.begin(), a.compute_ms.end(), 0.0),
              std::accumulate(b.compute_ms.begin(), b.compute_ms.end(), 0.0), 1e-9);
  EXPECT_GT(a.offload_requests, 0);
  EXPECT_GT(b.tasks_offloaded, 0);
}

TEST(Reactive, TwoRanksTerminate) {
  const lrp::LrpProblem p({2.0, 1.0}, {16, 4});
  const ReactiveResult r = run_reactive(p);
  std::int64_t tasks = 0;
  for (auto t : r.tasks_executed) tasks += t;
  EXPECT_EQ(tasks, 20);
}

TEST(Reactive, RejectsBadInputs) {
  ReactiveConfig config;
  config.batch_size = 0;
  const lrp::LrpProblem p = lrp::LrpProblem::uniform({1.0, 1.0}, 2);
  EXPECT_THROW(run_reactive(p, config), util::InvalidArgument);
  const lrp::LrpProblem single({1.0}, {2});
  EXPECT_THROW(run_reactive(single), util::InvalidArgument);
}

TEST(Reactive, StressManyTasksManyRanks) {
  std::vector<double> loads = {3.0, 0.5, 0.5, 0.5, 2.0, 0.5, 0.5, 0.5};
  const lrp::LrpProblem p = lrp::LrpProblem::uniform(std::move(loads), 64);
  const ReactiveResult r = run_reactive(p);
  std::int64_t tasks = 0;
  for (auto t : r.tasks_executed) tasks += t;
  EXPECT_EQ(tasks, p.total_tasks());
  // With zero-cost tasks the steal timing is scheduler-dependent (even the
  // heavy rank may grab one batch when it drains first), so the hard
  // guarantee is conservation plus bounded deterioration; improvement is the
  // common case but not certain on an oversubscribed host.
  EXPECT_LE(r.measured_imbalance, p.imbalance_ratio() + 0.1);
  EXPECT_GT(r.tasks_offloaded, 0);
}

}  // namespace
}  // namespace qulrb::mpirt
