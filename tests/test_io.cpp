#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "io/csv.hpp"
#include "io/lrp_io.hpp"
#include "lrp/solver.hpp"
#include "util/error.hpp"

namespace qulrb::io {
namespace {

const lrp::LrpProblem kPaper = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

// ------------------------------------------------------------------ csv ----

TEST(Csv, RoundTripSimple) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"x", "y"}};
  std::stringstream ss;
  write_csv(ss, doc);
  const CsvDocument back = read_csv(ss);
  EXPECT_EQ(back.header, doc.header);
  EXPECT_EQ(back.rows, doc.rows);
}

TEST(Csv, QuotedFieldsRoundTrip) {
  CsvDocument doc;
  doc.header = {"name", "value"};
  doc.rows = {{"has,comma", "has\"quote"}};
  std::stringstream ss;
  write_csv(ss, doc);
  const CsvDocument back = read_csv(ss);
  EXPECT_EQ(back.rows[0][0], "has,comma");
  EXPECT_EQ(back.rows[0][1], "has\"quote");
}

TEST(Csv, EmptyFieldsPreserved) {
  std::stringstream ss("a,b,c\n1,,3\n");
  const CsvDocument doc = read_csv(ss);
  EXPECT_EQ(doc.rows[0][1], "");
}

TEST(Csv, CrLfHandled) {
  std::stringstream ss("a,b\r\n1,2\r\n");
  const CsvDocument doc = read_csv(ss);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, ColumnIndexLookup) {
  CsvDocument doc;
  doc.header = {"x", "y", "z"};
  EXPECT_EQ(doc.column_index("y"), 1u);
  EXPECT_THROW(doc.column_index("missing"), util::InvalidArgument);
}

TEST(Csv, MalformedRowWidthRejected) {
  std::stringstream ss("a,b\n1,2,3\n");
  EXPECT_THROW(read_csv(ss), util::InvalidArgument);
}

TEST(Csv, EmptyDocumentRejected) {
  std::stringstream ss("");
  EXPECT_THROW(read_csv(ss), util::InvalidArgument);
}

TEST(Csv, MissingFileRejected) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), util::InvalidArgument);
}

TEST(Csv, WriteRejectsRaggedRows) {
  CsvDocument doc;
  doc.header = {"a"};
  doc.rows = {{"1", "2"}};
  std::stringstream ss;
  EXPECT_THROW(write_csv(ss, doc), util::InvalidArgument);
}

// --------------------------------------------------------------- lrp io ----

TEST(LrpIo, InputTableMatchesAppendixFormat) {
  const CsvDocument doc = to_input_table(kPaper);
  // Header: Process, P1..P4, w, L.
  ASSERT_EQ(doc.header.size(), 7u);
  EXPECT_EQ(doc.header[0], "Process");
  EXPECT_EQ(doc.header[1], "P1");
  EXPECT_EQ(doc.header[5], "w");
  EXPECT_EQ(doc.header[6], "L");
  ASSERT_EQ(doc.rows.size(), 4u);
  EXPECT_EQ(doc.rows[0][1], "5");  // diagonal task count
  EXPECT_EQ(doc.rows[0][2], "0");  // off-diagonal zero
}

TEST(LrpIo, InputRoundTrip) {
  const lrp::LrpProblem back = from_input_table(to_input_table(kPaper));
  ASSERT_EQ(back.num_processes(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.tasks_on(i), kPaper.tasks_on(i));
    EXPECT_NEAR(back.task_load(i), kPaper.task_load(i), 1e-6);
  }
}

TEST(LrpIo, InputFileRoundTrip) {
  const std::string path = "/tmp/qulrb_test_input.csv";
  write_input_file(path, kPaper);
  const lrp::LrpProblem back = read_input_file(path);
  EXPECT_EQ(back.num_processes(), 4u);
  EXPECT_NEAR(back.load(2), 15.6, 1e-6);
  std::remove(path.c_str());
}

TEST(LrpIo, InputRejectsOffDiagonalAssignments) {
  CsvDocument doc = to_input_table(kPaper);
  doc.rows[0][2] = "3";  // P1 row, P2 column
  EXPECT_THROW(from_input_table(doc), util::InvalidArgument);
}

TEST(LrpIo, InputRejectsMalformedNumbers) {
  CsvDocument doc = to_input_table(kPaper);
  doc.rows[0][5] = "not-a-number";
  EXPECT_THROW(from_input_table(doc), util::InvalidArgument);
  doc = to_input_table(kPaper);
  doc.rows[1][1] = "";
  EXPECT_THROW(from_input_table(doc), util::InvalidArgument);
}

TEST(LrpIo, OutputTableCrossChecks) {
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  const CsvDocument doc = to_output_table(kPaper, out.plan);
  const std::size_t total_col = doc.column_index("num_total");
  const std::size_t local_col = doc.column_index("num_local");
  const std::size_t remote_col = doc.column_index("num_remote");
  for (std::size_t i = 0; i < 4; ++i) {
    const long long total = std::stoll(doc.rows[i][total_col]);
    const long long local = std::stoll(doc.rows[i][local_col]);
    const long long remote = std::stoll(doc.rows[i][remote_col]);
    EXPECT_EQ(total, local + remote) << "row " << i;
    EXPECT_EQ(total, out.plan.tasks_hosted(i));
  }
}

TEST(LrpIo, OutputPlanRoundTrip) {
  lrp::ProactLbSolver solver;
  const lrp::SolveOutput out = solver.solve(kPaper);
  const CsvDocument doc = to_output_table(kPaper, out.plan);
  const lrp::MigrationPlan back = plan_from_output_table(doc);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(back.count(i, j), out.plan.count(i, j));
    }
  }
  EXPECT_NO_THROW(back.validate(kPaper));
}

TEST(LrpIo, OutputFileWriteAndParse) {
  const std::string path = "/tmp/qulrb_test_output.csv";
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  write_output_file(path, kPaper, out.plan);
  const lrp::MigrationPlan back = plan_from_output_table(read_csv_file(path));
  EXPECT_EQ(back.total_migrated(), out.plan.total_migrated());
  std::remove(path.c_str());
}

TEST(LrpIo, OutputRejectsInvalidPlan) {
  lrp::MigrationPlan bad(4);  // all zeros: tasks lost
  EXPECT_THROW(to_output_table(kPaper, bad), util::InvalidArgument);
}

TEST(LrpIo, OutputLoadColumnMatchesPlan) {
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  const CsvDocument doc = to_output_table(kPaper, out.plan);
  const auto loads = out.plan.new_loads(kPaper);
  const std::size_t l_col = doc.column_index("L");
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::stod(doc.rows[i][l_col]), loads[i], 1e-4);
  }
}

}  // namespace
}  // namespace qulrb::io
