#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "anneal/delta_cache.hpp"
#include "anneal/hybrid.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/problem.hpp"
#include "model/cqm.hpp"
#include "model/qubo.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

using model::CqmModel;
using model::LinearExpr;
using model::QuboModel;
using model::Sense;
using model::State;
using model::VarId;

// Incremental updates and fresh recomputes walk the same data in different
// orders, so they agree only up to FP association error. Observed worst-case
// relative error across these tests is ~5e-15; the bound leaves headroom.
constexpr double kRelTol = 1e-10;

double rel_err(double cached, double fresh) {
  return std::abs(cached - fresh) / (1.0 + std::abs(fresh));
}

CqmModel random_cqm(util::Rng& rng, std::size_t n) {
  CqmModel cqm;
  for (std::size_t i = 0; i < n; ++i) cqm.add_variable();
  for (std::size_t i = 0; i < n; ++i) {
    cqm.add_objective_linear(static_cast<VarId>(i), rng.next_double() * 4 - 2);
  }
  for (std::size_t t = 0; t < 2 * n; ++t) {
    const auto i = static_cast<VarId>(rng.next_below(n));
    const auto j = static_cast<VarId>(rng.next_below(n));
    if (i != j) cqm.add_objective_quadratic(i, j, rng.next_double() * 2 - 1);
  }
  for (std::size_t g = 0; g < 3; ++g) {
    LinearExpr e;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.next_bool(0.5)) {
        e.add_term(static_cast<VarId>(i), rng.next_double() * 3 - 1.5);
      }
    }
    e.add_constant(rng.next_double() - 0.5);
    e.normalize();
    if (e.size() > 0) cqm.add_squared_group(std::move(e), rng.next_double() * 2 + 0.1);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    LinearExpr e;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.next_bool(0.6)) {
        e.add_term(static_cast<VarId>(i), rng.next_double() * 4 - 2);
      }
    }
    e.normalize();
    if (e.size() == 0) continue;
    const Sense sense = c % 3 == 0 ? Sense::LE : (c % 3 == 1 ? Sense::GE : Sense::EQ);
    cqm.add_constraint(std::move(e), sense, rng.next_double() * 2 - 1);
  }
  return cqm;
}

double total_energy_brute(const CqmModel& m, const State& s,
                          const std::vector<double>& pen) {
  double e = m.objective_value(s);
  for (std::size_t c = 0; c < m.num_constraints(); ++c) {
    e += pen[c] * m.constraint_violation(c, s);
  }
  return e;
}

std::vector<double> random_penalties(util::Rng& rng, std::size_t n) {
  std::vector<double> pen(n);
  for (auto& p : pen) p = rng.next_double() * 5;
  return pen;
}

State random_state(util::Rng& rng, std::size_t n) {
  State s(n);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  return s;
}

/// Drive a CqmDeltaCache through `steps` random flips with periodic penalty
/// swaps, checking every cached entry against a fresh recompute each step.
void drive_and_check(const CqmModel& cqm, util::Rng& rng, std::size_t steps) {
  const std::size_t n = cqm.num_variables();
  CqmDeltaCache cache(cqm, random_state(rng, n),
                      random_penalties(rng, cqm.num_constraints()));
  for (std::size_t step = 0; step < steps; ++step) {
    if (step % 97 == 13) {
      cache.set_penalties(random_penalties(rng, cqm.num_constraints()));
    }
    cache.apply_flip(static_cast<VarId>(rng.next_below(n)));
    // Checking all n entries every step keeps the cost O(n * steps), still
    // trivial at these sizes, and catches stale neighbours immediately.
    for (std::size_t u = 0; u < n; ++u) {
      const auto cached = cache.cached_delta(static_cast<VarId>(u));
      const auto fresh = cache.fresh_delta(static_cast<VarId>(u));
      ASSERT_LT(rel_err(cached.objective, fresh.objective), kRelTol)
          << "objective entry " << u << " stale at step " << step;
      ASSERT_LT(rel_err(cached.penalty, fresh.penalty), kRelTol)
          << "penalty entry " << u << " stale at step " << step;
    }
  }
}

// ------------------------------------------ cached vs fresh: random CQMs ---

TEST(CqmDeltaCacheProperty, MatchesFreshDeltasOnRandomCqms) {
  util::Rng rng(42);
  // 20 models x 500 steps = 10k apply_flip/set_penalties interleavings.
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 6 + rng.next_below(10);
    const CqmModel cqm = random_cqm(rng, n);
    drive_and_check(cqm, rng, 500);
  }
}

TEST(CqmDeltaCacheProperty, MatchesFreshDeltasOnLrpShapes) {
  // The two paper formulations exercise the degenerate shapes random models
  // miss: Q_CQM1's all-variable migration bound and Q_CQM2's equality rows.
  util::Rng rng(7);
  const lrp::LrpProblem problem =
      lrp::LrpProblem::uniform({3.0, 1.0, 2.5, 0.5}, 5);
  for (const auto variant : {lrp::CqmVariant::kReduced, lrp::CqmVariant::kFull}) {
    const auto built =
        lrp::build_lrp_cqm(problem, variant, problem.total_tasks(), {});
    drive_and_check(built.cqm(), rng, 2500);
  }
}

// --------------------------------------------- flip/pair deltas vs brute ---

TEST(CqmIncrementalState, FlipAndPairDeltasMatchBruteForce) {
  util::Rng rng(11);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 6 + rng.next_below(10);
    const CqmModel cqm = random_cqm(rng, n);
    const auto pen = random_penalties(rng, cqm.num_constraints());
    const State s = random_state(rng, n);
    const CqmIncrementalState walk(cqm, s, pen);
    const double base = total_energy_brute(cqm, s, pen);
    for (std::size_t v = 0; v < n; ++v) {
      State t = s;
      t[v] ^= 1u;
      EXPECT_LT(rel_err(walk.flip_delta(static_cast<VarId>(v)),
                        total_energy_brute(cqm, t, pen) - base),
                kRelTol);
    }
    for (int q = 0; q < 50; ++q) {
      const auto a = static_cast<VarId>(rng.next_below(n));
      const auto b = static_cast<VarId>(rng.next_below(n));
      if (a == b) continue;
      State t = s;
      t[a] ^= 1u;
      t[b] ^= 1u;
      EXPECT_LT(rel_err(walk.pair_delta_parts(a, b).total(),
                        total_energy_brute(cqm, t, pen) - base),
                kRelTol);
    }
  }
}

// ----------------------------------------------------- QUBO delta cache ----

TEST(QuboDeltaCacheTest, MatchesFreshFlipDeltasThroughRandomWalk) {
  util::Rng rng(3);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n = 8 + rng.next_below(24);
    QuboModel qubo(n);
    for (std::size_t i = 0; i < n; ++i) {
      qubo.add_linear(static_cast<VarId>(i), rng.next_double() * 2 - 1);
    }
    for (std::size_t t = 0; t < 4 * n; ++t) {
      const auto i = static_cast<VarId>(rng.next_below(n));
      const auto j = static_cast<VarId>(rng.next_below(n));
      if (i != j) qubo.add_quadratic(i, j, rng.next_double() * 2 - 1);
    }
    State s = random_state(rng, n);
    QuboDeltaCache cache(qubo, s);
    for (int step = 0; step < 400; ++step) {
      cache.apply_flip(s, static_cast<VarId>(rng.next_below(n)));
      ASSERT_LT(rel_err(cache.energy(), qubo.energy(s)), kRelTol);
      for (std::size_t v = 0; v < n; ++v) {
        ASSERT_LT(rel_err(cache.delta(static_cast<VarId>(v)),
                          qubo.flip_delta(s, static_cast<VarId>(v))),
                  kRelTol);
      }
    }
  }
}

// ------------------------------------------------ determinism guarantees ---

lrp::LrpCqm medium_lrp_cqm() {
  // 48 variables: above the hybrid's exhaustive-enumeration threshold, so
  // this exercises the threaded annealing portfolio, not the Gray-code path.
  const lrp::LrpProblem problem =
      lrp::LrpProblem::uniform({4.0, 1.5, 2.0, 0.5}, 9);
  return lrp::build_lrp_cqm(problem, lrp::CqmVariant::kReduced,
                            problem.total_tasks(), {});
}

TEST(HybridDeterminism, ThreadCountDoesNotChangeResult) {
  const auto built = medium_lrp_cqm();
  HybridSolverParams p;
  p.num_restarts = 4;
  p.sweeps = 200;
  p.max_penalty_rounds = 2;
  p.seed = 21;
  p.threads = 1;
  const HybridSolveResult serial = HybridCqmSolver(p).solve(built.cqm());
  p.threads = 4;
  const HybridSolveResult threaded = HybridCqmSolver(p).solve(built.cqm());
  EXPECT_EQ(serial.best.state, threaded.best.state);
  EXPECT_EQ(serial.best.energy, threaded.best.energy);
  EXPECT_EQ(serial.best.violation, threaded.best.violation);
  EXPECT_EQ(serial.stats.restarts_used, threaded.stats.restarts_used);
  ASSERT_EQ(serial.samples.size(), threaded.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples.at(i).state, threaded.samples.at(i).state);
    EXPECT_EQ(serial.samples.at(i).energy, threaded.samples.at(i).energy);
  }
}

TEST(CqmAnnealerDeterminism, SharedPairIndexMatchesPrivateBuild) {
  // anneal_once must consume the RNG identically whether the caller passes a
  // prebuilt PairMoveIndex or lets the annealer build its own.
  const auto built = medium_lrp_cqm();
  const std::vector<double> pen(built.cqm().num_constraints(), 10.0);
  CqmAnnealParams ap;
  ap.sweeps = 120;
  const PairMoveIndex shared = PairMoveIndex::build(built.cqm());

  util::Rng rng_a(77);
  const Sample a = CqmAnnealer(ap).anneal_once(built.cqm(), pen, rng_a);
  util::Rng rng_b(77);
  const Sample b =
      CqmAnnealer(ap).anneal_once(built.cqm(), pen, rng_b, {}, nullptr, &shared);

  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

}  // namespace
}  // namespace qulrb::anneal
