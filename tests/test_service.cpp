#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "service/rebalance_service.hpp"
#include "util/timer.hpp"

namespace qulrb::service {
namespace {

RebalanceRequest small_request(std::uint64_t seed = 1) {
  RebalanceRequest request;
  request.task_loads = {10.0, 2.0, 2.0, 2.0};
  request.task_counts = {8, 8, 8, 8};
  request.k = 6;
  request.hybrid.sweeps = 300;
  request.hybrid.num_restarts = 1;
  request.hybrid.seed = seed;
  return request;
}

/// A request whose solve runs until its token is tripped.
RebalanceRequest long_request() {
  RebalanceRequest request;
  request.task_loads = std::vector<double>(12, 1.0);
  request.task_loads[0] = 20.0;
  request.task_counts = std::vector<std::int64_t>(12, 64);
  request.k = 64;
  request.hybrid.sweeps = 500'000;
  request.hybrid.num_restarts = 8;
  request.hybrid.seed = 5;
  return request;
}

TEST(Service, SolvesEndToEnd) {
  RebalanceService svc({.num_workers = 2});
  const RebalanceResponse r = svc.submit(small_request()).get();
  EXPECT_EQ(r.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(r.feasible);
  ASSERT_TRUE(r.plan.has_value());
  EXPECT_LT(r.metrics.imbalance_after, r.metrics.imbalance_before);
  EXPECT_GT(r.total_ms, 0.0);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(Service, RepeatRequestsHitTheCache) {
  RebalanceService svc({.num_workers = 1});
  svc.submit(small_request(1)).get();
  const RebalanceResponse warm = svc.submit(small_request(2)).get();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.cache_retargeted);

  RebalanceRequest drifted = small_request(3);
  drifted.task_loads = {2.0, 10.0, 2.0, 2.0};
  const RebalanceResponse retargeted = svc.submit(drifted).get();
  EXPECT_TRUE(retargeted.cache_hit);
  EXPECT_TRUE(retargeted.cache_retargeted);
  EXPECT_EQ(retargeted.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(retargeted.feasible);
}

TEST(Service, LockFreeHealthAccessorsTrackTheService) {
  RebalanceService svc({.num_workers = 1});
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_EQ(svc.inflight(), 0u);
  EXPECT_DOUBLE_EQ(svc.cache_hit_rate(), 0.0);

  svc.submit(small_request(1)).get();  // cold: miss
  svc.submit(small_request(2)).get();  // warm: exact hit
  // The future resolves inside the finish callback, just before the running
  // set shrinks — drain() is the barrier after which the mirrors read 0.
  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_EQ(svc.inflight(), 0u);
  EXPECT_DOUBLE_EQ(svc.cache_hit_rate(), 0.5);
  // The relaxed mirror agrees with the authoritative mutex-taking snapshot.
  EXPECT_DOUBLE_EQ(svc.stats().cache_hit_rate, svc.cache_hit_rate());
}

TEST(Service, QueueFullRejectsImmediately) {
  ServiceParams params;
  params.num_workers = 1;
  params.max_pending = 2;
  RebalanceService svc(params);

  // Occupy the single worker, then fill the queue.
  const std::uint64_t blocker = svc.submit(long_request(), {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto queued1 = svc.submit(small_request());
  auto queued2 = svc.submit(small_request());

  util::WallTimer timer;
  const RebalanceResponse r = svc.submit(small_request()).get();
  EXPECT_EQ(r.outcome, RequestOutcome::kRejected);
  EXPECT_EQ(r.error, "queue full");
  EXPECT_LT(timer.elapsed_ms(), 100.0);  // rejection is synchronous
  EXPECT_EQ(svc.stats().rejected_queue_full, 1u);

  EXPECT_TRUE(svc.cancel(blocker));
  queued1.get();
  queued2.get();
}

TEST(Service, PriorityOrdersTheQueue) {
  ServiceParams params;
  params.num_workers = 1;
  RebalanceService svc(params);

  const std::uint64_t blocker = svc.submit(long_request(), {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::mutex mutex;
  std::vector<int> order;
  auto tag = [&](int label) {
    return [&, label](RebalanceResponse) {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(label);
    };
  };
  RebalanceRequest low = small_request();
  low.priority = 0;
  RebalanceRequest high = small_request();
  high.priority = 5;
  svc.submit(low, tag(0));
  svc.submit(high, tag(5));

  EXPECT_TRUE(svc.cancel(blocker));
  svc.drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 5);  // higher priority ran first despite later submit
  EXPECT_EQ(order[1], 0);
}

TEST(Service, ExpiredDeadlineIsShedNotSolved) {
  ServiceParams params;
  params.num_workers = 1;
  params.admission_deadline_check = false;  // let it into the queue
  RebalanceService svc(params);

  const std::uint64_t blocker = svc.submit(long_request(), {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  RebalanceRequest hopeless = small_request();
  hopeless.deadline_ms = 1.0;
  auto future = svc.submit(hopeless);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let it expire
  EXPECT_TRUE(svc.cancel(blocker));

  const RebalanceResponse r = future.get();
  EXPECT_EQ(r.outcome, RequestOutcome::kShed);
  EXPECT_FALSE(r.plan.has_value());
  EXPECT_EQ(svc.stats().shed, 1u);
}

TEST(Service, DeadlineBoundsRunningSolve) {
  RebalanceService svc({.num_workers = 1});
  RebalanceRequest request = long_request();
  request.deadline_ms = 80.0;
  util::WallTimer timer;
  const RebalanceResponse r = svc.submit(request).get();
  // The solve was cut by the budget but still answered with its incumbent.
  EXPECT_LT(timer.elapsed_ms(), 3000.0);
  EXPECT_EQ(r.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(r.budget_expired);
  EXPECT_TRUE(r.plan.has_value());
}

TEST(Service, CancelPendingRequest) {
  ServiceParams params;
  params.num_workers = 1;
  RebalanceService svc(params);
  const std::uint64_t blocker = svc.submit(long_request(), {});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto future = svc.submit(small_request());
  // The id of the queued request is blocker + 1 (ids are sequential).
  EXPECT_TRUE(svc.cancel(blocker + 1));
  const RebalanceResponse r = future.get();
  EXPECT_EQ(r.outcome, RequestOutcome::kCancelled);
  EXPECT_FALSE(r.plan.has_value());

  EXPECT_TRUE(svc.cancel(blocker));
  EXPECT_FALSE(svc.cancel(blocker + 7));  // unknown id
  svc.drain();
}

TEST(Service, CancelRunningSolveReturnsIncumbent) {
  RebalanceService svc({.num_workers = 1});
  auto future = svc.submit(long_request());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(svc.cancel(1));
  const RebalanceResponse r = future.get();
  EXPECT_EQ(r.outcome, RequestOutcome::kCancelled);
  EXPECT_TRUE(r.plan.has_value());  // solved enough to decode something
  EXPECT_TRUE(r.budget_expired);
}

TEST(Service, InvalidRequestFailsCleanly) {
  RebalanceService svc({.num_workers = 1});
  RebalanceRequest bad;
  bad.task_loads = {1.0, 2.0};
  bad.task_counts = {4};  // mismatched lengths
  const RebalanceResponse r = svc.submit(bad).get();
  EXPECT_EQ(r.outcome, RequestOutcome::kFailed);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.stats().failed, 1u);
}

TEST(Service, DestructorAnswersPendingRequests) {
  std::future<RebalanceResponse> orphan;
  {
    RebalanceService svc({.num_workers = 1});
    svc.submit(long_request(), {});
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    orphan = svc.submit(small_request());
  }  // destructor cancels the running solve and answers the queued one
  const RebalanceResponse r = orphan.get();
  EXPECT_EQ(r.outcome, RequestOutcome::kCancelled);
}

TEST(Service, StatsAggregateLatencies) {
  RebalanceService svc({.num_workers = 2});
  std::vector<std::future<RebalanceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(svc.submit(small_request(static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futures) f.get();
  svc.drain();  // futures resolve inside callbacks, slightly before bookkeeping
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.solve_ms.count(), 6u);
  EXPECT_EQ(stats.total_ms.count(), 6u);
  EXPECT_GT(stats.ewma_solve_ms, 0.0);
  EXPECT_GT(stats.total_hist.total(), 0u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.running, 0u);
}

}  // namespace
}  // namespace qulrb::service
