#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "lrp/solver.hpp"
#include "mpirt/communicator.hpp"
#include "mpirt/lb_driver.hpp"
#include "util/error.hpp"

namespace qulrb::mpirt {
namespace {

TEST(Communicator, RunLaunchesEveryRank) {
  Communicator comm(6);
  std::atomic<int> hits{0};
  std::atomic<int> rank_sum{0};
  comm.run([&](RankContext& ctx) {
    hits.fetch_add(1);
    rank_sum.fetch_add(ctx.rank());
    EXPECT_EQ(ctx.size(), 6);
  });
  EXPECT_EQ(hits.load(), 6);
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(Communicator, PointToPointDelivery) {
  Communicator comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 5, {1.0, 2.0, 3.0});
    } else {
      const Message m = ctx.recv(0, 5);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 5);
      EXPECT_EQ(m.payload, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(Communicator, FifoPerSourceTagPair) {
  Communicator comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) ctx.send(1, 1, {static_cast<double>(i)});
    } else {
      for (int i = 0; i < 10; ++i) {
        const Message m = ctx.recv(0, 1);
        EXPECT_DOUBLE_EQ(m.payload[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Communicator, TagAndSourceMatching) {
  Communicator comm(3);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(2, 1, {10.0});
    } else if (ctx.rank() == 1) {
      ctx.send(2, 2, {20.0});
    } else {
      // Receive in the "wrong" arrival order: matching must pick correctly.
      const Message from1 = ctx.recv(1, 2);
      const Message from0 = ctx.recv(0, 1);
      EXPECT_DOUBLE_EQ(from1.payload[0], 20.0);
      EXPECT_DOUBLE_EQ(from0.payload[0], 10.0);
    }
  });
}

TEST(Communicator, ProbeSeesQueuedMessages) {
  Communicator comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 9, {1.0});
      ctx.barrier();
    } else {
      ctx.barrier();  // after the barrier the send has been enqueued
      EXPECT_TRUE(ctx.probe(0, 9));
      EXPECT_FALSE(ctx.probe(0, 8));
      (void)ctx.recv(0, 9);
      EXPECT_FALSE(ctx.probe(0, 9));
    }
  });
}

TEST(Communicator, BarrierIsReusable) {
  Communicator comm(4);
  std::atomic<int> phase_counter{0};
  comm.run([&](RankContext& ctx) {
    for (int phase = 0; phase < 5; ++phase) {
      phase_counter.fetch_add(1);
      ctx.barrier();
      // After the barrier, all 4 increments of this phase must be visible.
      EXPECT_EQ(phase_counter.load() % 4, 0) << "phase " << phase;
      ctx.barrier();
    }
  });
  EXPECT_EQ(phase_counter.load(), 20);
}

TEST(Communicator, AllreduceSumAndMax) {
  Communicator comm(5);
  comm.run([](RankContext& ctx) {
    const double r = static_cast<double>(ctx.rank());
    EXPECT_DOUBLE_EQ(ctx.allreduce_sum(r), 0.0 + 1.0 + 2.0 + 3.0 + 4.0);
    EXPECT_DOUBLE_EQ(ctx.allreduce_max(r), 4.0);
    // Back-to-back reductions must not interfere.
    EXPECT_DOUBLE_EQ(ctx.allreduce_sum(1.0), 5.0);
  });
}

TEST(Communicator, RankExceptionPropagates) {
  Communicator comm(3);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 1) throw util::InvalidArgument("boom");
               }),
               util::InvalidArgument);
}

TEST(Communicator, SendValidation) {
  Communicator comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_THROW(ctx.send(7, 0, {}), util::InvalidArgument);
    }
  });
}

TEST(Communicator, StressManyMessages) {
  Communicator comm(4);
  std::atomic<std::int64_t> received{0};
  comm.run([&](RankContext& ctx) {
    const int n = ctx.size();
    for (int dest = 0; dest < n; ++dest) {
      if (dest == ctx.rank()) continue;
      for (int i = 0; i < 50; ++i) {
        ctx.send(dest, 3, {static_cast<double>(ctx.rank() * 1000 + i)});
      }
    }
    for (int src = 0; src < n; ++src) {
      if (src == ctx.rank()) continue;
      for (int i = 0; i < 50; ++i) {
        const Message m = ctx.recv(src, 3);
        EXPECT_DOUBLE_EQ(m.payload[0], static_cast<double>(src * 1000 + i));
        received.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(received.load(), 4 * 3 * 50);
}

// ----------------------------------------------------------- lb driver -----

const lrp::LrpProblem kPaper = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

TEST(LbDriver, IdentityPlanExecutesLocally) {
  const LiveExecResult r = run_live(kPaper, lrp::MigrationPlan::identity(kPaper));
  EXPECT_EQ(r.tasks_migrated, 0);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(r.tasks_executed[p], 5);
    EXPECT_NEAR(r.compute_ms[p], kPaper.load(p), 1e-9);
  }
  EXPECT_NEAR(r.virtual_makespan_ms, kPaper.max_load(), 1e-9);
  EXPECT_NEAR(r.measured_imbalance, kPaper.imbalance_ratio(), 1e-9);
}

TEST(LbDriver, MigratedPlanMatchesAnalyticLoads) {
  lrp::ProactLbSolver solver;
  const lrp::SolveOutput out = solver.solve(kPaper);
  const LiveExecResult r = run_live(kPaper, out.plan);
  const auto expected = out.plan.new_loads(kPaper);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_NEAR(r.compute_ms[p], expected[p], 1e-9) << "rank " << p;
    EXPECT_EQ(r.tasks_executed[p], out.plan.tasks_hosted(p));
  }
  EXPECT_EQ(r.tasks_migrated, out.plan.total_migrated());
  EXPECT_LT(r.measured_imbalance, kPaper.imbalance_ratio());
}

TEST(LbDriver, WorkConservationUnderHeavyMigration) {
  lrp::GreedySolver greedy;
  const lrp::SolveOutput out = greedy.solve(kPaper);
  const LiveExecResult r = run_live(kPaper, out.plan);
  const double total =
      std::accumulate(r.compute_ms.begin(), r.compute_ms.end(), 0.0);
  EXPECT_NEAR(total, kPaper.total_load(), 1e-6);
  std::int64_t tasks = 0;
  for (auto t : r.tasks_executed) tasks += t;
  EXPECT_EQ(tasks, kPaper.total_tasks());
}

TEST(LbDriver, MultipleIterationsScaleNothing) {
  // compute_ms is per-iteration; more iterations must not change it.
  LiveExecConfig one;
  one.iterations = 1;
  LiveExecConfig five;
  five.iterations = 5;
  const auto a = run_live(kPaper, lrp::MigrationPlan::identity(kPaper), one);
  const auto b = run_live(kPaper, lrp::MigrationPlan::identity(kPaper), five);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_NEAR(a.compute_ms[p], b.compute_ms[p], 1e-9);
  }
}

TEST(LbDriver, RealSpinWorkTakesWallTime) {
  // Tiny spin so the test stays fast even on one core.
  const lrp::LrpProblem small = lrp::LrpProblem::uniform({1.0, 1.0}, 2);
  LiveExecConfig config;
  config.iterations = 1;
  config.work_scale = 1.0;  // 1 ms per task, 4 tasks total
  const LiveExecResult r = run_live(small, lrp::MigrationPlan::identity(small), config);
  EXPECT_GE(r.wall_ms, 1.9);  // at least ~2 ms of real work per rank
}

TEST(LbDriver, InvalidInputsRejected) {
  lrp::MigrationPlan bad(4);
  EXPECT_THROW(run_live(kPaper, bad), util::InvalidArgument);
  LiveExecConfig config;
  config.iterations = 0;
  EXPECT_THROW(run_live(kPaper, lrp::MigrationPlan::identity(kPaper), config),
               util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb::mpirt
