#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "anneal/hybrid.hpp"
#include "anneal/sa.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/problem.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace qulrb {
namespace {

// ---------------------------------------------------- token semantics -----

TEST(CancelToken, DefaultIsInert) {
  util::CancelToken token;
  EXPECT_FALSE(token.can_expire());
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.expired());
  token.cancel();  // no flag to trip; still inert
  EXPECT_FALSE(token.expired());
}

TEST(CancelToken, CancelPropagatesToCopies) {
  util::CancelToken token = util::CancelToken::cancellable();
  util::CancelToken copy = token;
  EXPECT_FALSE(copy.expired());
  token.cancel();
  EXPECT_TRUE(copy.cancel_requested());
  EXPECT_TRUE(copy.expired());
}

TEST(CancelToken, DeadlineExpires) {
  const util::CancelToken token = util::CancelToken{}.with_deadline_ms(20.0);
  EXPECT_TRUE(token.can_expire());
  EXPECT_FALSE(token.cancel_requested());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(token.expired());
  EXPECT_LE(token.remaining_ms(), 0.0);
}

TEST(CancelToken, RemainingMsDecreases) {
  const util::CancelToken token = util::CancelToken{}.with_deadline_ms(5000.0);
  const double first = token.remaining_ms();
  EXPECT_GT(first, 0.0);
  EXPECT_LE(first, 5000.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_LT(token.remaining_ms(), first);
}

// ---------------------------------------------------- sampler polling -----

TEST(Cancel, PreCancelledSaReturnsImmediately) {
  model::QuboModel qubo(64);
  for (model::VarId v = 0; v < 64; ++v) qubo.add_linear(v, -1.0);
  anneal::SaParams params;
  params.sweeps = 2'000'000;  // would run for minutes if the poll were dead
  params.num_reads = 4;
  params.cancel = util::CancelToken::cancellable();
  params.cancel.cancel();
  util::WallTimer timer;
  const anneal::SampleSet samples = anneal::SimulatedAnnealer(params).sample(qubo);
  EXPECT_LT(timer.elapsed_ms(), 2000.0);
  EXPECT_FALSE(samples.empty());  // the incumbent survives cancellation
}

// ------------------------------------------- hybrid deadline regression -----

lrp::LrpProblem big_problem() {
  std::vector<double> loads(12, 1.0);
  loads[0] = 20.0;
  loads[1] = 14.0;
  return lrp::LrpProblem::uniform(loads, 64);
}

// Satellite regression: a tiny time_limit_ms makes the solve return within a
// bounded wall-clock while still reporting a usable incumbent.
TEST(Cancel, HybridTimeLimitBoundsWallClock) {
  const lrp::LrpCqm lrp_cqm(big_problem(), lrp::CqmVariant::kReduced, 64);
  anneal::HybridSolverParams params;
  params.num_restarts = 8;
  params.sweeps = 500'000;  // far beyond the budget on purpose
  params.seed = 3;
  params.time_limit_ms = 50.0;
  util::WallTimer timer;
  const anneal::HybridSolveResult result =
      anneal::HybridCqmSolver(params).solve(lrp_cqm.cqm());
  // Generous bound: budget 50 ms plus polling granularity and CI slack.
  EXPECT_LT(timer.elapsed_ms(), 2000.0);
  EXPECT_TRUE(result.stats.budget_expired);
  ASSERT_EQ(result.best.state.size(), lrp_cqm.cqm().num_variables());
}

TEST(Cancel, HybridStopsWhenTokenTrippedMidSolve) {
  const lrp::LrpCqm lrp_cqm(big_problem(), lrp::CqmVariant::kReduced, 64);
  anneal::HybridSolverParams params;
  params.num_restarts = 8;
  params.sweeps = 500'000;
  params.seed = 3;
  params.cancel = util::CancelToken::cancellable();

  util::CancelToken trigger = params.cancel;
  std::thread canceller([trigger]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    trigger.cancel();
  });
  util::WallTimer timer;
  const anneal::HybridSolveResult result =
      anneal::HybridCqmSolver(params).solve(lrp_cqm.cqm());
  canceller.join();
  EXPECT_LT(timer.elapsed_ms(), 2000.0);
  EXPECT_TRUE(result.stats.budget_expired);
  ASSERT_EQ(result.best.state.size(), lrp_cqm.cqm().num_variables());
}

TEST(Cancel, InertTokenPreservesDeterminism) {
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({6.0, 1.0, 1.0, 1.0}, 8);
  const lrp::LrpCqm lrp_cqm(problem, lrp::CqmVariant::kReduced, 8);
  anneal::HybridSolverParams params;
  params.num_restarts = 2;
  params.sweeps = 300;
  params.seed = 11;
  params.exhaustive_max_vars = 0;  // force the sampling path
  const auto a = anneal::HybridCqmSolver(params).solve(lrp_cqm.cqm());
  params.cancel = util::CancelToken::cancellable();  // live but never tripped
  const auto b = anneal::HybridCqmSolver(params).solve(lrp_cqm.cqm());
  EXPECT_EQ(a.best.state, b.best.state);
  EXPECT_DOUBLE_EQ(a.best.energy, b.best.energy);
}

}  // namespace
}  // namespace qulrb
