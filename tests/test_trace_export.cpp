#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "lrp/solver.hpp"
#include "runtime/trace_export.hpp"
#include "util/error.hpp"

namespace qulrb::runtime {
namespace {

const lrp::LrpProblem kPaper = lrp::LrpProblem::uniform({1.87, 1.97, 3.12, 2.81}, 5);

BspResult simulate(const lrp::MigrationPlan& plan) {
  BspConfig config;
  config.overlap_migration = false;  // expose send phases in the trace
  return BspSimulator(config).run(kPaper, plan);
}

TEST(TraceExport, ContainsEventsForEveryProcess) {
  lrp::GreedySolver greedy;
  const auto plan = greedy.solve(kPaper).plan;
  const std::string json = to_chrome_trace(kPaper, plan, simulate(plan));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("compute ("), std::string::npos);
  EXPECT_NE(json.find("migrate-send"), std::string::npos);
  for (int tid = 0; tid < 4; ++tid) {
    EXPECT_NE(json.find("\"tid\":" + std::to_string(tid)), std::string::npos);
  }
}

TEST(TraceExport, BaselineHasNoCommEvents) {
  const auto plan = lrp::MigrationPlan::identity(kPaper);
  const std::string json = to_chrome_trace(kPaper, plan, simulate(plan));
  EXPECT_EQ(json.find("migrate-send"), std::string::npos);
  EXPECT_NE(json.find("barrier-wait"), std::string::npos);  // idle still shows
}

TEST(TraceExport, StructurallyBalancedJson) {
  lrp::ProactLbSolver proactlb;
  const auto plan = proactlb.solve(kPaper).plan;
  const std::string json = to_chrome_trace(kPaper, plan, simulate(plan));
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"metadata\""), std::string::npos);
  EXPECT_NE(json.find("\"migrated_tasks\""), std::string::npos);
}

TEST(TraceExport, FileWriting) {
  const std::string path = "/tmp/qulrb_test_trace.json";
  const auto plan = lrp::MigrationPlan::identity(kPaper);
  write_chrome_trace_file(path, kPaper, plan, simulate(plan));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, MismatchedResultRejected) {
  const auto plan = lrp::MigrationPlan::identity(kPaper);
  BspResult bogus;
  bogus.processes.resize(2);  // wrong process count
  EXPECT_THROW(to_chrome_trace(kPaper, plan, bogus), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb::runtime
