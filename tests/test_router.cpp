#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "io/json_value.hpp"
#include "router/coalesce.hpp"
#include "router/policy.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "util/error.hpp"

namespace qulrb::router {
namespace {

// ------------------------------------------------------------- parsing ----

TEST(Policy, ParseRoundTripsEveryKind) {
  for (const PolicyKind kind :
       {PolicyKind::kRandom, PolicyKind::kRoundRobin, PolicyKind::kShortestQueue,
        PolicyKind::kShortestQueueStale, PolicyKind::kCacheAffinity}) {
    EXPECT_EQ(parse_policy(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_policy("fastest"), util::InvalidArgument);
}

TEST(BackendList, ParsesPortsAndHostPortsMixed) {
  const auto list = parse_backend_list("7471,localhost:7472,10.0.0.5:80");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].host, "127.0.0.1");
  EXPECT_EQ(list[0].port, 7471);
  EXPECT_EQ(list[1].host, "localhost");
  EXPECT_EQ(list[1].port, 7472);
  EXPECT_EQ(list[2].label(), "10.0.0.5:80");
}

TEST(BackendList, RejectsGarbage) {
  EXPECT_THROW(parse_backend_list(""), util::InvalidArgument);
  EXPECT_THROW(parse_backend_list("host:"), util::InvalidArgument);
  EXPECT_THROW(parse_backend_list("banana"), util::InvalidArgument);
  EXPECT_THROW(parse_backend_list("70000"), util::InvalidArgument);
}

// ----------------------------------------------------------- hash ring ----

std::map<std::uint64_t, std::size_t> ring_assignment(
    const HashRing& ring, std::size_t keys) {
  std::map<std::uint64_t, std::size_t> owner;
  for (std::size_t i = 0; i < keys; ++i) {
    const std::uint64_t h = mix64(i + 1);
    owner[h] = ring.owner(h);
  }
  return owner;
}

TEST(HashRing, RemovalMovesOnlyTheDeadBackendsKeys) {
  constexpr std::size_t kKeys = 4000;
  HashRing ring(64);
  ring.rebuild({0, 1, 2, 3});
  const auto before = ring_assignment(ring, kKeys);

  ring.rebuild({0, 1, 3});  // backend 2 died
  const auto after = ring_assignment(ring, kKeys);

  std::size_t moved = 0;
  for (const auto& [key, owner] : before) {
    if (owner == 2) {
      // Its keys must relocate to a surviving backend.
      EXPECT_NE(after.at(key), 2u);
    } else if (after.at(key) != owner) {
      ++moved;  // a survivor's key moved — consistent hashing forbids this
    }
  }
  EXPECT_EQ(moved, 0u);
}

TEST(HashRing, ReAddingRestoresTheOriginalAssignment) {
  constexpr std::size_t kKeys = 2000;
  HashRing ring(64);
  ring.rebuild({0, 1, 2, 3});
  const auto original = ring_assignment(ring, kKeys);
  ring.rebuild({0, 1, 3});
  ring.rebuild({0, 1, 2, 3});  // backend 2 came back
  EXPECT_EQ(ring_assignment(ring, kKeys), original);
}

TEST(HashRing, AdditionMovesRoughlyOneNthOfTheKeyspace) {
  constexpr std::size_t kKeys = 8000;
  HashRing ring(64);
  ring.rebuild({0, 1, 2, 3});
  const auto before = ring_assignment(ring, kKeys);
  ring.rebuild({0, 1, 2, 3, 4});
  const auto after = ring_assignment(ring, kKeys);
  std::size_t moved = 0;
  for (const auto& [key, owner] : before) {
    if (after.at(key) != owner) {
      ++moved;
      EXPECT_EQ(after.at(key), 4u);  // moves only flow to the new member
    }
  }
  const double frac = static_cast<double>(moved) / kKeys;
  EXPECT_GT(frac, 0.08);  // ~1/5 expected; generous bounds for vnode variance
  EXPECT_LT(frac, 0.35);
}

TEST(HashRing, OwnersWalksDistinctBackends) {
  HashRing ring(16);
  ring.rebuild({0, 1, 2});
  const auto order = ring.owners(mix64(99), 3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 3u);
}

// ------------------------------------------------------------ policies ----

std::vector<BackendView> uniform_views(std::size_t n) {
  return std::vector<BackendView>(n);
}

TEST(Policy, RoundRobinCyclesOverHealthyOnly) {
  auto policy = make_policy(PolicyKind::kRoundRobin);
  auto views = uniform_views(4);
  views[2].healthy = false;
  std::vector<std::size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(policy->pick(0, views));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 3, 0, 1, 3}));
}

TEST(Policy, RandomIsSeedDeterministicAndRoughlyUniform) {
  PolicyConfig config;
  config.seed = 42;
  auto a = make_policy(PolicyKind::kRandom, config);
  auto b = make_policy(PolicyKind::kRandom, config);
  const auto views = uniform_views(4);
  std::vector<std::size_t> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t pick = a->pick(0, views);
    EXPECT_EQ(b->pick(0, views), pick);  // same seed, same stream
    ++counts[pick];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 800u);  // 1000 expected per backend
    EXPECT_LT(c, 1200u);
  }
}

TEST(Policy, AllDownMeansNoPick) {
  for (const PolicyKind kind :
       {PolicyKind::kRandom, PolicyKind::kRoundRobin, PolicyKind::kShortestQueue,
        PolicyKind::kShortestQueueStale, PolicyKind::kCacheAffinity}) {
    auto policy = make_policy(kind);
    auto views = uniform_views(3);
    for (auto& v : views) v.healthy = false;
    EXPECT_EQ(policy->pick(1, views), views.size()) << to_string(kind);
  }
}

TEST(Policy, ShortestQueueCountsFreshInflightStaleDoesNot) {
  auto fresh = make_policy(PolicyKind::kShortestQueue);
  auto stale = make_policy(PolicyKind::kShortestQueueStale);
  auto views = uniform_views(2);
  views[0].queue_depth = 2;  // probe says 0 is longer...
  views[1].queue_depth = 1;
  views[1].inflight = 5;  // ...but the router just sent 1 five requests
  EXPECT_EQ(fresh->pick(0, views), 0u);  // 2+0 < 1+5
  EXPECT_EQ(stale->pick(0, views), 1u);  // probe data only: 1 < 2
}

TEST(Policy, CacheAffinityIsStickyPerTopology) {
  auto policy = make_policy(PolicyKind::kCacheAffinity);
  const auto views = uniform_views(4);
  for (std::uint64_t topo = 0; topo < 32; ++topo) {
    const std::size_t first = policy->pick(mix64(topo), views);
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(policy->pick(mix64(topo), views), first);
    }
  }
}

TEST(Policy, CacheAffinitySpillsOffOverloadedOwnerOnly) {
  auto policy = make_policy(PolicyKind::kCacheAffinity);
  auto views = uniform_views(4);
  const std::uint64_t topo = mix64(7);
  const std::size_t owner = policy->pick(topo, views);

  // Slam the owner far past the bounded-load threshold: this key spills to
  // its next ring neighbour...
  views[owner].inflight = 100;
  const std::size_t spilled = policy->pick(topo, views);
  EXPECT_NE(spilled, owner);

  // ...but keys owned by other backends stay exactly where they were.
  for (std::uint64_t t = 0; t < 64; ++t) {
    const std::uint64_t h = mix64(1000 + t);
    auto calm = uniform_views(4);
    const std::size_t home = policy->pick(h, calm);
    if (home == owner) continue;
    EXPECT_EQ(policy->pick(h, views), home);
  }
}

TEST(Policy, CacheAffinityFallsBackToOwnerWhenEveryoneIsSlammed) {
  auto policy = make_policy(PolicyKind::kCacheAffinity);
  auto calm = uniform_views(3);
  const std::uint64_t topo = mix64(11);
  const std::size_t owner = policy->pick(topo, calm);
  auto slammed = uniform_views(3);
  for (auto& v : slammed) v.inflight = 500;
  // Uniform overload: spilling buys nothing, affinity should win.
  EXPECT_EQ(policy->pick(topo, slammed), owner);
}

// Stale-information degradation (the ImrulKayes model): a deterministic
// fleet simulation where the policy's view snapshot refreshes only every d
// arrivals. With d = 1 shortest-queue keeps the fleet level; as d grows,
// every arrival in a window herds onto whichever backend looked shortest at
// the last refresh, so the peak backlog grows with d.
std::size_t peak_backlog_with_staleness(std::size_t d) {
  constexpr std::size_t kBackends = 4;
  constexpr std::size_t kArrivals = 256;
  auto policy = make_policy(PolicyKind::kShortestQueueStale);
  std::vector<std::size_t> depth(kBackends, 0);
  std::vector<BackendView> snapshot(kBackends);
  std::size_t peak = 0;
  for (std::size_t a = 0; a < kArrivals; ++a) {
    if (a % d == 0) {
      for (std::size_t b = 0; b < kBackends; ++b) {
        snapshot[b].queue_depth = depth[b];
      }
    }
    const std::size_t pick = policy->pick(mix64(a), snapshot);
    EXPECT_LT(pick, kBackends) << "no pick";
    if (pick >= kBackends) return 0;
    ++depth[pick];
    peak = std::max(peak, depth[pick]);
    // Total service rate equals the arrival rate (one departure per tick,
    // rotating over the fleet): well-placed arrivals keep every queue near
    // empty, herded arrivals outrun their backend's 1-in-4 drain share.
    auto& q = depth[a % kBackends];
    if (q > 0) --q;
  }
  return peak;
}

TEST(Policy, StaleInformationDegradesPlacementAsWindowGrows) {
  const std::size_t fresh = peak_backlog_with_staleness(1);
  const std::size_t mid = peak_backlog_with_staleness(16);
  const std::size_t stale = peak_backlog_with_staleness(64);
  EXPECT_LE(fresh, mid);
  EXPECT_LT(fresh, stale);
  EXPECT_GE(stale, 16u);  // a 64-arrival herd piles deep on one backend
}

// ----------------------------------------------------------- coalescer ----

TEST(Coalescer, FirstJoinLeadsLaterJoinsFollow) {
  Coalescer c;
  std::vector<std::string> got_a, got_b;
  const auto a = c.join("key", 1, [&](const std::string& l) { got_a.push_back(l); });
  const auto b = c.join("key", 2, [&](const std::string& l) { got_b.push_back(l); });
  EXPECT_TRUE(a.leader);
  EXPECT_FALSE(b.leader);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(c.coalesced_total(), 1u);
  EXPECT_EQ(c.inflight_groups(), 1u);

  auto waiters = c.complete(a.group);
  ASSERT_EQ(waiters.size(), 2u);
  for (auto& w : waiters) w.deliver("resp");
  EXPECT_EQ(got_a, (std::vector<std::string>{"resp"}));
  EXPECT_EQ(got_b, (std::vector<std::string>{"resp"}));
  EXPECT_EQ(c.inflight_groups(), 0u);
  EXPECT_TRUE(c.complete(a.group).empty());  // idempotent
}

TEST(Coalescer, DifferentKeysNeverShare) {
  Coalescer c;
  const auto a = c.join("k1", 1, [](const std::string&) {});
  const auto b = c.join("k2", 2, [](const std::string&) {});
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_NE(a.group, b.group);
}

TEST(Coalescer, CompletedKeyOpensAFreshGroup) {
  Coalescer c;
  const auto a = c.join("key", 1, [](const std::string&) {});
  c.complete(a.group);
  const auto b = c.join("key", 2, [](const std::string&) {});
  EXPECT_TRUE(b.leader);  // previous solve finished; this is a new one
  EXPECT_NE(a.group, b.group);
}

TEST(Coalescer, DetachKeepsTheGroupAliveForOthers) {
  Coalescer c;
  const auto a = c.join("key", 1, [](const std::string&) {});
  c.join("key", 2, [](const std::string&) {});
  EXPECT_EQ(c.waiter_count(a.group), 2u);
  EXPECT_EQ(c.detach(a.group, 2), 1u);
  EXPECT_EQ(c.detach(a.group, 1), 0u);  // last one out closes the group
  EXPECT_EQ(c.inflight_groups(), 0u);
  EXPECT_EQ(c.detach(a.group, 1), std::numeric_limits<std::size_t>::max());
}

TEST(Coalescer, DisabledStillTracksButNeverShares) {
  Coalescer c(/*enabled=*/false);
  const auto a = c.join("key", 1, [](const std::string&) {});
  const auto b = c.join("key", 2, [](const std::string&) {});
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);  // identical key, but sharing is off
  EXPECT_NE(a.group, b.group);
  EXPECT_EQ(c.coalesced_total(), 0u);
}

TEST(Coalescer, ConcurrentJoinsYieldExactlyOneLeaderAndOneDeliveryEach) {
  constexpr std::size_t kThreads = 16;
  Coalescer c;
  std::atomic<std::size_t> leaders{0};
  std::atomic<std::size_t> delivered{0};
  std::atomic<std::uint64_t> group{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto join =
          c.join("hot-key", t, [&](const std::string&) { ++delivered; });
      if (join.leader) {
        ++leaders;
        group.store(join.group);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(leaders.load(), 1u);  // single-solve semantics under concurrency
  EXPECT_EQ(c.coalesced_total(), kThreads - 1);
  auto waiters = c.complete(group.load());
  EXPECT_EQ(waiters.size(), kThreads);
  for (auto& w : waiters) w.deliver("done");
  EXPECT_EQ(delivered.load(), kThreads);
}

// ----------------------------------------------------- response rewrite ----

TEST(RewriteResponseId, ReplacesOnlyTheTopLevelId) {
  EXPECT_EQ(rewrite_response_id(R"({"id":42,"outcome":"ok"})", 7),
            R"({"id":7,"outcome":"ok"})");
  // Nested ids and ids inside strings stay untouched.
  EXPECT_EQ(
      rewrite_response_id(R"({"error":"bad \"id\":9 here","id":3})", 1),
      R"({"error":"bad \"id\":9 here","id":1})");
  EXPECT_EQ(rewrite_response_id(R"({"meta":{"id":5},"id":2})", 8),
            R"({"meta":{"id":5},"id":8})");
  // No top-level id: line passes through unchanged.
  EXPECT_EQ(rewrite_response_id(R"({"stats":{"id":1}})", 9),
            R"({"stats":{"id":1}})");
}

TEST(RewriteResponseId, HandlesWiderAndNarrowerIds) {
  EXPECT_EQ(rewrite_response_id(R"({"id":1,"x":0})", 123456),
            R"({"id":123456,"x":0})");
  EXPECT_EQ(rewrite_response_id(R"({"id":999999,"x":0})", 1),
            R"({"id":1,"x":0})");
}

// --------------------------------------------------- raw field splicing ----

TEST(ExtractRawField, PullsObjectsArraysStringsAndScalars) {
  const std::string line =
      R"({"stats":{"a":1,"nested":{"b":[1,2]}},"traces":[{"x":"}"}],)"
      R"("name":"ro\"uter","count":42,"flag":true})";
  EXPECT_EQ(extract_raw_field(line, "stats"), R"({"a":1,"nested":{"b":[1,2]}})");
  EXPECT_EQ(extract_raw_field(line, "traces"), R"([{"x":"}"}])");
  EXPECT_EQ(extract_raw_field(line, "name"), R"("ro\"uter")");
  EXPECT_EQ(extract_raw_field(line, "count"), "42");
  EXPECT_EQ(extract_raw_field(line, "flag"), "true");
  EXPECT_EQ(extract_raw_field(line, "absent"), "");
  // Only top-level keys match: "a" lives inside stats.
  EXPECT_EQ(extract_raw_field(line, "a"), "");
}

// --------------------------------------------------------- topology key ----

TEST(Router, TopologyHashKeysOnCacheIdentityNotLoads) {
  const auto parse = [](const std::string& line) {
    return service::parse_request_line(line).request;
  };
  const auto base = parse(
      R"({"op":"solve","id":1,"loads":[9,1,1,1],"counts":[8,8,8,8],"k":4})");
  // Different loads, same topology: same backend, the cache can retarget.
  const auto new_loads = parse(
      R"({"op":"solve","id":2,"loads":[1,9,1,1],"counts":[8,8,8,8],"k":4})");
  EXPECT_EQ(Router::topology_hash(base), Router::topology_hash(new_loads));
  // Different counts / k / variant: different model build, different key.
  const auto new_counts = parse(
      R"({"op":"solve","id":3,"loads":[9,1,1,1],"counts":[8,8,8,9],"k":4})");
  const auto new_k = parse(
      R"({"op":"solve","id":4,"loads":[9,1,1,1],"counts":[8,8,8,8],"k":5})");
  const auto new_variant = parse(
      R"({"op":"solve","id":5,"loads":[9,1,1,1],"counts":[8,8,8,8],"k":4,)"
      R"("variant":"qcqm2"})");
  EXPECT_NE(Router::topology_hash(base), Router::topology_hash(new_counts));
  EXPECT_NE(Router::topology_hash(base), Router::topology_hash(new_k));
  EXPECT_NE(Router::topology_hash(base), Router::topology_hash(new_variant));
}

// ------------------------------------------------------ routed sessions ----

/// A minimal TCP listener standing in for a backend: accepts connections and
/// drains whatever arrives without ever answering, so routed solves stay in
/// flight for as long as a test needs them to.
class SilentBackend {
 public:
  SilentBackend() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 8);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accepter_ = std::thread([this] {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        std::lock_guard<std::mutex> lock(mutex_);
        fds_.push_back(fd);
        readers_.emplace_back([fd] {
          char buf[4096];
          while (::recv(fd, buf, sizeof(buf), 0) > 0) {
          }
        });
      }
    });
  }

  ~SilentBackend() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accepter_.joinable()) accepter_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : fds_) ::shutdown(fd, SHUT_RDWR);
    for (std::thread& t : readers_) t.join();
    for (const int fd : fds_) ::close(fd);
  }

  int port() const { return port_; }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accepter_;
  std::mutex mutex_;
  std::vector<int> fds_;
  std::vector<std::thread> readers_;
};

TEST(Router, DuplicateInFlightIdIsRejectedNotOverwritten) {
  SilentBackend backend;
  Router::Params params;
  params.pool.backends = {BackendAddress{"127.0.0.1", backend.port()}};
  params.policy = PolicyKind::kRoundRobin;
  Router router(params);
  router.start();

  std::mutex mutex;
  std::vector<std::string> lines;
  const std::uint64_t session =
      router.register_session([&](const std::string& line) {
        std::lock_guard<std::mutex> lock(mutex);
        lines.push_back(line);
      });

  const std::string solve =
      R"({"op":"solve","id":1,"loads":[4,1],"counts":[2,2],"k":2})";
  router.handle_client_line(session, solve);
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_TRUE(lines.empty());  // the backend never answers: still in flight
  }

  // Reusing the correlation id while the first solve is in flight is an
  // error — silently overwriting the pending entry would orphan the first
  // solve's coalescer waiter (cancel/teardown could no longer detach it).
  router.handle_client_line(session, solve);
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("error"), std::string::npos);
    EXPECT_NE(lines[0].find("in flight"), std::string::npos);
  }
  // The rejected duplicate never joined the group...
  EXPECT_EQ(router.coalescer().coalesced_total(), 0u);
  // ...but the same solve under a fresh id coalesces as usual.
  router.handle_client_line(
      session, R"({"op":"solve","id":2,"loads":[4,1],"counts":[2,2],"k":2})");
  EXPECT_EQ(router.coalescer().coalesced_total(), 1u);

  router.unregister_session(session);
  router.stop();
}

TEST(Router, HealthAnswersLocallyFromTheProbedView) {
  Router::Params params;
  params.pool.backends = parse_backend_list("1,2");  // nothing listening
  Router router(params);  // deliberately not start()ed: both backends down
  std::vector<std::string> lines;
  const std::uint64_t session = router.register_session(
      [&](const std::string& line) { lines.push_back(line); });
  router.handle_client_line(session, R"({"op":"health"})");
  ASSERT_EQ(lines.size(), 1u);
  const io::JsonValue doc = io::JsonValue::parse(lines[0]);
  const io::JsonValue* stats = doc.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->string_or("role", ""), "router");
  EXPECT_EQ(stats->int_or("backends", -1), 2);
  EXPECT_EQ(stats->int_or("healthy", -1), 0);
  EXPECT_EQ(stats->int_or("queue_depth", -1), 0);
  EXPECT_EQ(stats->int_or("inflight", -1), 0);
  router.unregister_session(session);
}

}  // namespace
}  // namespace qulrb::router
