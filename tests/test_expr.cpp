#include <gtest/gtest.h>

#include "model/expr.hpp"

namespace qulrb::model {
namespace {

TEST(LinearExpr, EmptyEvaluatesToConstant) {
  LinearExpr e(2.5);
  EXPECT_DOUBLE_EQ(e.evaluate(State{}), 2.5);
  EXPECT_TRUE(e.empty());
}

TEST(LinearExpr, EvaluateSelectsSetVariables) {
  LinearExpr e;
  e.add_term(0, 1.0);
  e.add_term(1, 2.0);
  e.add_term(2, 4.0);
  e.normalize();
  EXPECT_DOUBLE_EQ(e.evaluate(State{1, 0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(e.evaluate(State{0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(e.evaluate(State{1, 1, 1}), 7.0);
}

TEST(LinearExpr, NormalizeMergesDuplicates) {
  LinearExpr e;
  e.add_term(3, 1.5);
  e.add_term(3, 2.5);
  e.add_term(1, 1.0);
  e.normalize();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.terms()[0].var, 1u);
  EXPECT_EQ(e.terms()[1].var, 3u);
  EXPECT_DOUBLE_EQ(e.terms()[1].coeff, 4.0);
}

TEST(LinearExpr, NormalizeDropsZeroCoefficients) {
  LinearExpr e;
  e.add_term(0, 1.0);
  e.add_term(0, -1.0);
  e.add_term(1, 2.0);
  e.normalize();
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.terms()[0].var, 1u);
}

TEST(LinearExpr, MinMaxValues) {
  LinearExpr e(1.0);
  e.add_term(0, 3.0);
  e.add_term(1, -2.0);
  e.normalize();
  EXPECT_DOUBLE_EQ(e.min_value(), -1.0);  // constant + negative term
  EXPECT_DOUBLE_EQ(e.max_value(), 4.0);   // constant + positive term
}

TEST(LinearExpr, MinMaxAllPositive) {
  LinearExpr e;
  e.add_term(0, 1.0);
  e.add_term(1, 2.0);
  e.normalize();
  EXPECT_DOUBLE_EQ(e.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(e.max_value(), 3.0);
}

TEST(LinearExpr, PlusEqualsMergesTerms) {
  LinearExpr a(1.0);
  a.add_term(0, 1.0);
  a.normalize();
  LinearExpr b(2.0);
  b.add_term(0, 3.0);
  b.add_term(1, 1.0);
  b.normalize();
  a += b;
  EXPECT_DOUBLE_EQ(a.constant(), 3.0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.terms()[0].coeff, 4.0);
}

TEST(LinearExpr, ScaleMultipliesEverything) {
  LinearExpr e(2.0);
  e.add_term(0, 3.0);
  e.normalize();
  e *= -2.0;
  EXPECT_DOUBLE_EQ(e.constant(), -4.0);
  EXPECT_DOUBLE_EQ(e.terms()[0].coeff, -6.0);
}

TEST(LinearExpr, ScaleByZeroClearsTerms) {
  LinearExpr e(2.0);
  e.add_term(0, 3.0);
  e.normalize();
  e *= 0.0;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.constant(), 0.0);
}

TEST(LinearExpr, AddConstantAccumulates) {
  LinearExpr e;
  e.add_constant(1.5);
  e.add_constant(-0.5);
  EXPECT_DOUBLE_EQ(e.constant(), 1.0);
}

TEST(LinearExpr, EvaluateMatchesMinMaxBounds) {
  LinearExpr e(0.5);
  e.add_term(0, -1.0);
  e.add_term(1, 2.0);
  e.add_term(2, -3.0);
  e.normalize();
  // Exhaustively check that min/max are attained and are true bounds.
  double lo = 1e300, hi = -1e300;
  for (int bits = 0; bits < 8; ++bits) {
    State s{static_cast<std::uint8_t>(bits & 1),
            static_cast<std::uint8_t>((bits >> 1) & 1),
            static_cast<std::uint8_t>((bits >> 2) & 1)};
    const double v = e.evaluate(s);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_DOUBLE_EQ(e.min_value(), lo);
  EXPECT_DOUBLE_EQ(e.max_value(), hi);
}

}  // namespace
}  // namespace qulrb::model
