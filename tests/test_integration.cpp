#include <gtest/gtest.h>

#include <tuple>

#include "classical/exact.hpp"
#include "lrp/kselect.hpp"
#include "lrp/quantum_solver.hpp"
#include "lrp/solver.hpp"
#include "runtime/bsp_sim.hpp"
#include "util/rng.hpp"
#include "workloads/samoa.hpp"
#include "workloads/scenarios.hpp"

namespace qulrb {
namespace {

using lrp::CqmVariant;
using lrp::LrpProblem;
using lrp::QcqmOptions;
using lrp::QcqmSolver;

QcqmOptions fast_options(CqmVariant variant, std::int64_t k, std::uint64_t seed) {
  QcqmOptions o;
  o.variant = variant;
  o.k = k;
  o.hybrid.num_restarts = 2;
  o.hybrid.sweeps = 300;
  o.hybrid.max_penalty_rounds = 2;
  o.hybrid.seed = seed;
  return o;
}

LrpProblem random_problem(util::Rng& rng, std::size_t m, std::int64_t n) {
  std::vector<double> loads(m);
  for (auto& w : loads) w = 0.5 + rng.next_double() * 4.5;
  return LrpProblem::uniform(std::move(loads), n);
}

// --------------------------------------------------- property sweeps -------

class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::int64_t, int>> {};

TEST_P(PipelineProperty, EverySolverProducesValidPlanWithinBounds) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 977 + m * 31 +
                static_cast<std::uint64_t>(n));
  const LrpProblem problem = random_problem(rng, m, n);
  const lrp::KSelection k = lrp::select_k(problem);
  EXPECT_LE(k.k1, k.k2);

  lrp::GreedySolver greedy;
  lrp::KkSolver kk;
  lrp::ProactLbSolver proactlb;
  for (lrp::RebalanceSolver* solver :
       std::initializer_list<lrp::RebalanceSolver*>{&greedy, &kk, &proactlb}) {
    const lrp::SolverReport report = lrp::run_and_evaluate(*solver, problem);
    EXPECT_LE(report.metrics.imbalance_after,
              report.metrics.imbalance_before + 1e-9)
        << solver->name();
    EXPECT_LE(report.metrics.total_migrated, problem.total_tasks()) << solver->name();
  }

  for (auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    QcqmSolver solver(fast_options(variant, k.k1, static_cast<std::uint64_t>(seed)));
    const lrp::SolveOutput out = solver.solve(problem);
    EXPECT_NO_THROW(out.plan.validate(problem)) << lrp::to_string(variant);
    EXPECT_LE(out.plan.total_migrated(), k.k1) << lrp::to_string(variant);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepMxN, PipelineProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4, 6),
                       ::testing::Values<std::int64_t>(4, 9, 16),
                       ::testing::Values(1, 2)));

// ------------------------------------------- quantum vs exact oracle -------

TEST(QuantumVsExact, ReachesExactMakespanOnTinyInstances) {
  // With a generous k the CQM optimum equals the exact min-makespan
  // partition. The annealer should find it on tiny instances.
  util::Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    const LrpProblem problem = random_problem(rng, 3, 4);
    const auto items = problem.flatten_tasks();
    const auto exact = classical::exact_partition(items, 3);
    ASSERT_TRUE(exact.proven_optimal);

    QcqmSolver solver(fast_options(CqmVariant::kReduced, problem.total_tasks(),
                                   static_cast<std::uint64_t>(trial) + 1));
    const lrp::SolveOutput out = solver.solve(problem);
    const auto loads = out.plan.new_loads(problem);
    const double makespan = *std::max_element(loads.begin(), loads.end());
    EXPECT_NEAR(makespan, exact.partition.makespan(), 1e-6) << "trial " << trial;
  }
}

// ---------------------------------------------- paper-shape smoke runs -----

TEST(PaperShape, QuantumK1MatchesProactLbMigrations) {
  const auto scenario = workloads::scenarios::imbalance_levels()[3];  // Imb.3
  const lrp::KSelection k = lrp::select_k(scenario.problem);
  QcqmSolver solver(fast_options(CqmVariant::kReduced, k.k1, 3));
  const lrp::SolveOutput out = solver.solve(scenario.problem);
  EXPECT_NO_THROW(out.plan.validate(scenario.problem));
  EXPECT_LE(out.plan.total_migrated(), k.k1);
  // The bound is the minimum needed, so the solver should use most of it.
  EXPECT_GE(out.plan.total_migrated(), k.k1 * 3 / 4);
}

TEST(PaperShape, QuantumK2BalancesLikeGreedy) {
  const auto scenario = workloads::scenarios::imbalance_levels()[2];  // Imb.2
  const lrp::KSelection k = lrp::select_k(scenario.problem);
  QcqmSolver quantum(fast_options(CqmVariant::kReduced, k.k2, 7));
  lrp::GreedySolver greedy;
  const auto q = lrp::run_and_evaluate(quantum, scenario.problem);
  const auto g = lrp::run_and_evaluate(greedy, scenario.problem);
  EXPECT_LT(q.metrics.imbalance_after, 0.15);
  EXPECT_LE(q.metrics.total_migrated, g.metrics.total_migrated);
}

TEST(PaperShape, BalancedInputNeedsNoMigration) {
  // Imb.0: every method should keep (or reach) R_imb ~ 0; ProactLB and the
  // quantum methods must not migrate anything (k1 = 0).
  const auto scenario = workloads::scenarios::imbalance_levels()[0];
  const lrp::KSelection k = lrp::select_k(scenario.problem);
  EXPECT_EQ(k.k1, 0);
  QcqmSolver solver(fast_options(CqmVariant::kReduced, k.k1, 5));
  const lrp::SolveOutput out = solver.solve(scenario.problem);
  EXPECT_EQ(out.plan.total_migrated(), 0);
}

TEST(PaperShape, EndToEndSimulatedSpeedupFavorsFrugalMigration) {
  // Greedy and ProactLB reach similar balance, but ProactLB's smaller
  // migration traffic gives it the better first iteration.
  const auto scenario = workloads::scenarios::imbalance_levels()[4];
  lrp::GreedySolver greedy;
  lrp::ProactLbSolver proactlb;
  runtime::BspConfig config;
  config.iterations = 2;
  const runtime::BspSimulator sim(config);
  const auto g = sim.run(scenario.problem, greedy.solve(scenario.problem).plan);
  const auto p = sim.run(scenario.problem, proactlb.solve(scenario.problem).plan);
  EXPECT_LT(p.migration_overhead_ms, g.migration_overhead_ms);
}

TEST(PaperShape, SamoaPipelineAtReducedBudget) {
  // Down-scaled sam(oa)^2-like instance to keep CI fast: the full pipeline
  // (generator -> k-selection -> CQM -> hybrid solve -> decode) end to end.
  workloads::SamoaConfig config;
  config.num_processes = 8;
  config.sections_per_process = 32;
  config.base_depth = 5;
  config.max_depth = 8;
  config.target_imbalance = 3.0;
  const auto workload = workloads::make_samoa_workload(config);
  const lrp::KSelection k = lrp::select_k(workload.problem);
  ASSERT_GT(k.k1, 0);
  QcqmSolver solver(fast_options(CqmVariant::kReduced, k.k1, 9));
  const lrp::SolverReport report = lrp::run_and_evaluate(solver, workload.problem);
  EXPECT_LT(report.metrics.imbalance_after, workload.problem.imbalance_ratio());
  EXPECT_LE(report.metrics.total_migrated, k.k1);
  EXPECT_GT(report.metrics.speedup, 1.5);
}

}  // namespace
}  // namespace qulrb
