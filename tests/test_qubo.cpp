#include <gtest/gtest.h>

#include "model/qubo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::model {
namespace {

State make_state(std::size_t n, unsigned bits) {
  State s(n);
  for (std::size_t i = 0; i < n; ++i) s[i] = (bits >> i) & 1u;
  return s;
}

TEST(Qubo, EmptyModelEnergyIsOffset) {
  QuboModel q(0);
  q.add_offset(3.5);
  EXPECT_DOUBLE_EQ(q.energy(State{}), 3.5);
}

TEST(Qubo, LinearEnergy) {
  QuboModel q(3);
  q.add_linear(0, 1.0);
  q.add_linear(1, -2.0);
  q.add_linear(2, 4.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(3, 0b011)), -1.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(3, 0b000)), 0.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(3, 0b111)), 3.0);
}

TEST(Qubo, QuadraticEnergyNeedsBothBits) {
  QuboModel q(2);
  q.add_quadratic(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(2, 0b01)), 0.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(2, 0b10)), 0.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(2, 0b11)), 5.0);
}

TEST(Qubo, QuadraticOrderInvariant) {
  QuboModel q(2);
  q.add_quadratic(1, 0, 2.0);
  q.add_quadratic(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(q.quadratic(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(q.quadratic(1, 0), 5.0);
}

TEST(Qubo, DiagonalQuadraticFoldsIntoLinear) {
  QuboModel q(1);
  q.add_quadratic(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(q.linear(0), 2.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(1, 1)), 2.0);
}

TEST(Qubo, OutOfRangeThrows) {
  QuboModel q(2);
  EXPECT_THROW(q.add_linear(2, 1.0), util::InvalidArgument);
  EXPECT_THROW(q.add_quadratic(0, 5, 1.0), util::InvalidArgument);
  EXPECT_THROW(q.energy(State{1}), util::InvalidArgument);
}

TEST(Qubo, FlipDeltaMatchesFullRecompute) {
  util::Rng rng(99);
  QuboModel q(8);
  for (VarId i = 0; i < 8; ++i) q.add_linear(i, rng.next_normal());
  for (VarId i = 0; i < 8; ++i) {
    for (VarId j = i + 1; j < 8; ++j) {
      if (rng.next_bool(0.5)) q.add_quadratic(i, j, rng.next_normal());
    }
  }
  State s(8);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  for (VarId v = 0; v < 8; ++v) {
    const double before = q.energy(s);
    const double delta = q.flip_delta(s, v);
    State flipped = s;
    flipped[v] ^= 1u;
    EXPECT_NEAR(q.energy(flipped), before + delta, 1e-9) << "var " << v;
  }
}

TEST(Qubo, AddSquaredExprMatchesDirectSquare) {
  LinearExpr e(1.5);
  e.add_term(0, 2.0);
  e.add_term(1, -1.0);
  e.add_term(2, 0.5);
  e.normalize();
  QuboModel q(3);
  q.add_squared_expr(e, 2.0);
  for (unsigned bits = 0; bits < 8; ++bits) {
    const State s = make_state(3, bits);
    const double v = e.evaluate(s);
    EXPECT_NEAR(q.energy(s), 2.0 * v * v, 1e-9) << "bits " << bits;
  }
}

TEST(Qubo, AdjacencyListsAreSymmetric) {
  QuboModel q(3);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(1, 2, 2.0);
  const auto& adj = q.adjacency();
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0].size(), 1u);
  EXPECT_EQ(adj[1].size(), 2u);
  EXPECT_EQ(adj[2].size(), 1u);
  EXPECT_EQ(adj[0][0].other, 1u);
}

TEST(Qubo, MaxAbsCoefficient) {
  QuboModel q(2);
  q.add_linear(0, -3.0);
  q.add_quadratic(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(q.max_abs_coefficient(), 3.0);
}

TEST(Qubo, AddVariableGrowsModel) {
  QuboModel q(1);
  q.add_variable();
  EXPECT_EQ(q.num_variables(), 2u);
  q.add_linear(1, 1.0);
  EXPECT_DOUBLE_EQ(q.energy(make_state(2, 0b10)), 1.0);
}

TEST(Qubo, ForEachQuadraticVisitsAllTerms) {
  QuboModel q(3);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(0, 2, 2.0);
  q.add_quadratic(1, 2, 3.0);
  double sum = 0.0;
  int count = 0;
  q.for_each_quadratic([&](VarId i, VarId j, double c) {
    EXPECT_LT(i, j);
    sum += c;
    ++count;
  });
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

}  // namespace
}  // namespace qulrb::model
