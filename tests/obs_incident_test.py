#!/usr/bin/env python3
"""End-to-end observability-v3 smoke: two qulrb_serve backends behind one
qulrb_router with a deliberately impossible SLO.

Exercises the whole incident chain:
  - the router's federation loop pulls both backends' {"op":"obs"} registry
    snapshots and the router's {"op":"obs"} fleet view reports both live;
  - the federated Prometheus exposition carries qulrb_fleet_* families plus
    per-instance qulrb_build_info identities;
  - solves past the (unmeetable) latency SLO burn both windows, the router's
    SLO engine trips, and the incident thread writes one cross-process
    bundle: router flight spans plus every backend's recent ring, all
    correlated by the triggering request's rid;
  - a client {"op":"flight_dump"} against a backend returns its ring as a
    Perfetto document on demand.

Usage: obs_incident_test.py <qulrb_serve> <qulrb_router> <base-port> <dir>
"""

import glob
import json
import os
import subprocess
import sys
import time

SOLVE = (
    '{"op":"solve","id":%d,"loads":[30,4,4,4],"counts":[8,8,8,8],'
    '"k":4,"sweeps":200,"restarts":1,"seed":7}\n'
)


def connect(port, attempts=100):
    import socket

    for _ in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=10)
        except OSError:
            time.sleep(0.1)
    raise SystemExit("could not connect to port %d" % port)


def ask(port, line):
    s = connect(port)
    try:
        s.sendall(line.encode())
        return json.loads(s.makefile("rb").readline())
    finally:
        s.close()


def wait_for(predicate, what, attempts=150):
    for _ in range(attempts):
        try:
            if predicate():
                return
        except (OSError, ValueError, KeyError):
            pass
        time.sleep(0.1)
    raise SystemExit("timed out waiting for " + what)


def rids_in_flight(flight):
    return {e["args"]["rid"] for e in flight["traceEvents"] if "args" in e}


def main():
    serve, router = sys.argv[1], sys.argv[2]
    base, incident_dir = int(sys.argv[3]), sys.argv[4]
    front, b1, b2 = base, base + 1, base + 2
    os.makedirs(incident_dir, exist_ok=True)
    for stale in glob.glob(os.path.join(incident_dir, "incident-*.json")):
        os.remove(stale)

    procs = []
    try:
        for port in (b1, b2):
            procs.append(
                subprocess.Popen(
                    [serve, "--port", str(port), "--workers", "1", "--quiet"],
                    stdout=subprocess.DEVNULL,
                )
            )
        procs.append(
            subprocess.Popen(
                [
                    router,
                    "--port", str(front),
                    "--backends", "%d,%d" % (b1, b2),
                    # Round-robin so both backends serve traffic and both
                    # rings carry records for the bundle assertions.
                    "--policy", "round-robin",
                    "--probe-ms", "25",
                    "--federate-ms", "100",
                    "--incident-dir", incident_dir,
                    # No real solve can finish in a microsecond: every
                    # completion burns both SLO windows at 100x.
                    "--slo-latency-ms", "0.001",
                    "--quiet",
                ]
            )
        )

        wait_for(
            lambda: ask(front, '{"op":"stats"}\n')["stats"]["healthy"] == 2,
            "both backends healthy",
        )

        # Warm each backend's flight ring with one direct solve: the SLO is
        # unmeetable, so the very first routed completion trips the trigger
        # and the incident fan-out must find records on BOTH backends.
        for i, port in enumerate((b1, b2)):
            doc = ask(port, SOLVE % (1 + i))
            assert doc["outcome"] == "ok", doc

        # Traffic past the SLO. Distinct ids so coalescing cannot fold them.
        for i in range(6):
            doc = ask(front, SOLVE % (100 + i))
            assert doc["outcome"] == "ok", doc

        # Federation: the fleet view reports both backends' obs snapshots.
        wait_for(
            lambda: sum(
                1
                for entry in ask(front, '{"op":"obs"}\n')["obs"]["fleet"]
                if entry["reporting"]
            )
            == 2,
            "both backends federated",
        )
        obs = ask(front, '{"op":"obs"}\n')["obs"]
        assert obs["role"] == "router", obs
        assert "registry" in obs and "slo" in obs, list(obs)
        for entry in obs["fleet"]:
            assert entry["obs"]["role"] == "serve", entry
            assert "histograms" in entry["obs"]["registry"], entry

        # Federated exposition: fleet families merged bucket-wise, build
        # identities kept per instance.
        metrics = ask(front, '{"op":"metrics"}\n')["metrics"]
        assert "qulrb_fleet_service_requests_total" in metrics, metrics
        assert "qulrb_fleet_backends_reporting 2" in metrics, metrics
        assert 'qulrb_build_info{' in metrics, metrics
        assert 'role="router"' in metrics, metrics
        assert 'instance="127.0.0.1:%d"' % b1 in metrics, metrics
        assert 'instance="127.0.0.1:%d"' % b2 in metrics, metrics

        # The impossible SLO must have tripped: one incident bundle with the
        # router's spans and BOTH backends' rings, correlated by rid.
        wait_for(
            lambda: glob.glob(os.path.join(incident_dir, "incident-*.json")),
            "incident bundle written",
        )
        bundle_path = sorted(
            glob.glob(os.path.join(incident_dir, "incident-*.json"))
        )[0]
        with open(bundle_path) as f:
            incident = json.load(f)["incident"]
        assert incident["kind"] == "slo_burn", incident["kind"]
        assert incident["fast_burn"] >= 2.0, incident
        rid = incident["rid"]
        assert rid > 0, incident

        router_flight = incident["router"]["flight"]
        assert router_flight is not None, incident
        assert router_flight["metadata"]["trigger_rid"] == rid, router_flight
        assert rid in rids_in_flight(router_flight), "rid not in router ring"

        backends = incident["backends"]
        assert len(backends) == 2, backends
        backend_rids = set()
        for entry in backends:
            assert entry["flight"] is not None, entry
            events = entry["flight"]["traceEvents"]
            assert events, "backend ring empty: %s" % entry["backend"]
            backend_rids |= rids_in_flight(entry["flight"])
        assert rid in backend_rids, "triggering rid absent from backend rings"

        # On-demand flight dump straight off a backend.
        dump = ask(b1, '{"op":"flight_dump","window_s":30}\n')
        assert dump["flight"]["traceEvents"], dump
        assert dump["flight"]["metadata"]["source"] == "qulrb_serve", dump

        # Clean shutdown all around.
        for port in (front, b1, b2):
            s = connect(port)
            s.sendall(b'{"op":"shutdown"}\n')
            s.close()
        for p in procs:
            assert p.wait(timeout=20) == 0, "process exited non-zero"
        print("ok: federation, fleet metrics, incident bundle, flight dump")
        return 0
    finally:
        for p in procs:
            if p.poll() is None:
                p.kill()


if __name__ == "__main__":
    sys.exit(main())
