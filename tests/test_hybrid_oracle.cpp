// Oracle property suite: the hybrid CQM solver and the penalty-QUBO path are
// checked against exhaustive enumeration on randomly generated constrained
// models small enough to brute-force. This is the strongest correctness
// evidence the annealing stack has: for every (seed, size) cell the solver
// must return a feasible assignment whose objective matches the true
// constrained optimum (or prove infeasibility when there is none).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "anneal/hybrid.hpp"
#include "model/cqm.hpp"
#include "model/cqm_to_qubo.hpp"
#include "util/rng.hpp"

namespace qulrb {
namespace {

using model::CqmModel;
using model::LinearExpr;
using model::Sense;
using model::State;
using model::VarId;

struct BruteForce {
  bool feasible_exists = false;
  double best_objective = std::numeric_limits<double>::infinity();
  State best_state;
};

BruteForce brute_force(const CqmModel& cqm) {
  BruteForce result;
  const std::size_t n = cqm.num_variables();
  for (unsigned bits = 0; bits < (1u << n); ++bits) {
    State s(n);
    for (std::size_t q = 0; q < n; ++q) s[q] = (bits >> q) & 1u;
    if (!cqm.is_feasible(s, 1e-9)) continue;
    const double objective = cqm.objective_value(s);
    if (!result.feasible_exists || objective < result.best_objective) {
      result.feasible_exists = true;
      result.best_objective = objective;
      result.best_state = s;
    }
  }
  return result;
}

/// Random integer-coefficient CQM: linear + one squared group objective,
/// two inequality constraints and (sometimes) one equality.
CqmModel random_constrained_model(util::Rng& rng, std::size_t n) {
  CqmModel m;
  for (std::size_t i = 0; i < n; ++i) m.add_variable();
  for (VarId v = 0; v < n; ++v) {
    m.add_objective_linear(v, static_cast<double>(rng.next_in(-4, 4)));
  }
  LinearExpr group(static_cast<double>(rng.next_in(-3, 0)));
  for (VarId v = 0; v < n; ++v) {
    if (rng.next_bool(0.7)) group.add_term(v, static_cast<double>(rng.next_in(1, 3)));
  }
  m.add_squared_group(std::move(group), 1.0);

  for (int c = 0; c < 2; ++c) {
    LinearExpr lhs;
    double max_activity = 0.0;
    for (VarId v = 0; v < n; ++v) {
      if (rng.next_bool(0.6)) {
        const double coeff = static_cast<double>(rng.next_in(1, 3));
        lhs.add_term(v, coeff);
        max_activity += coeff;
      }
    }
    if (lhs.empty()) continue;
    // rhs below the max so the constraint actually bites.
    const double rhs = std::max(1.0, std::floor(max_activity * 0.6));
    m.add_constraint(std::move(lhs), Sense::LE, rhs);
  }
  if (rng.next_bool(0.5)) {
    LinearExpr lhs;
    for (VarId v = 0; v < n; ++v) {
      if (rng.next_bool(0.5)) lhs.add_term(v, 1.0);
    }
    if (!lhs.empty()) {
      m.add_constraint(std::move(lhs), Sense::EQ,
                       std::floor(static_cast<double>(lhs.size()) / 2.0));
    }
  }
  return m;
}

class HybridOracle : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(HybridOracle, MatchesBruteForceOptimum) {
  const auto [n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + n);
  const CqmModel cqm = random_constrained_model(rng, n);
  const BruteForce truth = brute_force(cqm);

  anneal::HybridSolverParams params;
  params.num_restarts = 3;
  params.sweeps = 600;
  params.seed = static_cast<std::uint64_t>(seed) + 100;
  const anneal::HybridSolveResult result = anneal::HybridCqmSolver(params).solve(cqm);

  if (!truth.feasible_exists) {
    EXPECT_FALSE(result.best.feasible);
    return;
  }
  ASSERT_TRUE(result.best.feasible)
      << "solver missed a feasible region of size-" << n << " model, seed " << seed;
  EXPECT_NEAR(result.best.energy, truth.best_objective, 1e-6)
      << "suboptimal: got " << result.best.energy << ", optimum "
      << truth.best_objective;
  // Reported energy must be the true objective of the reported state.
  EXPECT_NEAR(cqm.objective_value(result.best.state), result.best.energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HybridOracle,
                         ::testing::Combine(::testing::Values<std::size_t>(6, 8, 10,
                                                                           12),
                                            ::testing::Values(1, 2, 3, 4, 5)));

class QuboPathOracle : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {
};

TEST_P(QuboPathOracle, SlackConversionPreservesOptimum) {
  const auto [n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 104729 + n);
  const CqmModel cqm = random_constrained_model(rng, n);
  const BruteForce truth = brute_force(cqm);
  if (!truth.feasible_exists) GTEST_SKIP() << "no feasible assignment";

  const model::QuboConversion conv = model::cqm_to_qubo(cqm);
  ASSERT_LE(conv.qubo.num_variables(), 24u);

  // Brute-force the QUBO; its projected minimizer must be a CQM optimum.
  double best_energy = std::numeric_limits<double>::infinity();
  State best_state;
  const std::size_t total = conv.qubo.num_variables();
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << total); ++bits) {
    State s(total);
    for (std::size_t q = 0; q < total; ++q) s[q] = (bits >> q) & 1u;
    const double e = conv.qubo.energy(s);
    if (e < best_energy) {
      best_energy = e;
      best_state = s;
    }
  }
  const State projected = conv.project(best_state);
  EXPECT_TRUE(cqm.is_feasible(projected, 1e-6));
  EXPECT_NEAR(cqm.objective_value(projected), truth.best_objective, 1e-6);
}

// Keep the exhaustive QUBO enumeration tractable: small models only (slack
// bits can add ~10 ancillas).
INSTANTIATE_TEST_SUITE_P(Sweep, QuboPathOracle,
                         ::testing::Combine(::testing::Values<std::size_t>(5, 6, 7),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace qulrb
