#include <gtest/gtest.h>

#include "model/cqm.hpp"
#include "model/presolve.hpp"

namespace qulrb::model {
namespace {

TEST(Presolve, NoConstraintsFixesNothing) {
  CqmModel m;
  m.add_variable();
  m.add_variable();
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.num_fixed, 0u);
  EXPECT_FALSE(r.proven_infeasible);
}

TEST(Presolve, FixesVariableTooBigForLeConstraint) {
  CqmModel m;
  m.add_variable();
  m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 5.0);
  lhs.add_term(1, 1.0);
  m.add_constraint(lhs, Sense::LE, 2.0);
  const PresolveResult r = presolve(m);
  ASSERT_TRUE(r.fixed[0].has_value());
  EXPECT_EQ(*r.fixed[0], 0);       // 5 > 2, x0 can never be on
  EXPECT_FALSE(r.fixed[1].has_value());  // x1 alone is fine
}

TEST(Presolve, FixesVariableRequiredByGeConstraint) {
  CqmModel m;
  m.add_variable();
  m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 5.0);
  lhs.add_term(1, 1.0);
  m.add_constraint(lhs, Sense::GE, 5.0);
  const PresolveResult r = presolve(m);
  ASSERT_TRUE(r.fixed[0].has_value());
  EXPECT_EQ(*r.fixed[0], 1);  // without x0 the max is 1 < 5
}

TEST(Presolve, DetectsInfeasibleLe) {
  CqmModel m;
  m.add_variable();
  LinearExpr lhs(3.0);  // constant 3 folded: 0 <= -... wait, folded into rhs
  lhs.add_term(0, 1.0);
  m.add_constraint(lhs, Sense::LE, 2.0);  // x0 <= -1: impossible
  const PresolveResult r = presolve(m);
  EXPECT_TRUE(r.proven_infeasible);
}

TEST(Presolve, DetectsInfeasibleEq) {
  CqmModel m;
  m.add_variable();
  m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 1.0);
  lhs.add_term(1, 1.0);
  m.add_constraint(lhs, Sense::EQ, 5.0);  // max is 2
  const PresolveResult r = presolve(m);
  EXPECT_TRUE(r.proven_infeasible);
}

TEST(Presolve, PropagatesAcrossConstraints) {
  CqmModel m;
  m.add_variable();
  m.add_variable();
  // c1 forces x0 = 1; c2 then forces x1 = 0 (x0 + x1 <= 1).
  LinearExpr c1;
  c1.add_term(0, 1.0);
  m.add_constraint(c1, Sense::GE, 1.0);
  LinearExpr c2;
  c2.add_term(0, 1.0);
  c2.add_term(1, 1.0);
  m.add_constraint(c2, Sense::LE, 1.0);
  const PresolveResult r = presolve(m);
  ASSERT_TRUE(r.fixed[0].has_value());
  ASSERT_TRUE(r.fixed[1].has_value());
  EXPECT_EQ(*r.fixed[0], 1);
  EXPECT_EQ(*r.fixed[1], 0);
  EXPECT_EQ(r.num_fixed, 2u);
}

TEST(Presolve, EqualityFixesAllWhenTight) {
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  LinearExpr sum;
  for (VarId v = 0; v < 3; ++v) sum.add_term(v, 1.0);
  m.add_constraint(sum, Sense::EQ, 3.0);  // everything must be on
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.num_fixed, 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(*r.fixed[static_cast<std::size_t>(i)], 1);
}

TEST(Presolve, ZeroMigrationBoundFixesAllMovers) {
  // Mirrors the LRP migration constraint with k = 0: every migration bit
  // must be 0, while untouched variables stay free.
  CqmModel m;
  for (int i = 0; i < 4; ++i) m.add_variable();
  LinearExpr mig;
  mig.add_term(0, 1.0);
  mig.add_term(1, 2.0);
  mig.add_term(2, 4.0);
  m.add_constraint(mig, Sense::LE, 0.0);
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.num_fixed, 3u);
  EXPECT_FALSE(r.fixed[3].has_value());
  EXPECT_FALSE(r.proven_infeasible);
}

TEST(Presolve, NegativeCoefficientsHandled) {
  CqmModel m;
  m.add_variable();
  m.add_variable();
  // -x0 + x1 <= -1  =>  requires x0 = 1 and x1 = 0.
  LinearExpr lhs;
  lhs.add_term(0, -1.0);
  lhs.add_term(1, 1.0);
  m.add_constraint(lhs, Sense::LE, -1.0);
  const PresolveResult r = presolve(m);
  ASSERT_TRUE(r.fixed[0].has_value());
  ASSERT_TRUE(r.fixed[1].has_value());
  EXPECT_EQ(*r.fixed[0], 1);
  EXPECT_EQ(*r.fixed[1], 0);
}

TEST(Presolve, LooseConstraintFixesNothing) {
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  LinearExpr sum;
  for (VarId v = 0; v < 3; ++v) sum.add_term(v, 1.0);
  m.add_constraint(sum, Sense::LE, 3.0);  // trivially satisfied
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.num_fixed, 0u);
}

}  // namespace
}  // namespace qulrb::model
