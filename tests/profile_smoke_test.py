#!/usr/bin/env python3
"""Continuous-profiling smoke: two qulrb_serve backends behind one
qulrb_router, driven by qulrb_loadgen, then one fleet profile capture.

Exercises the whole profiling chain:
  - each backend runs its always-on SIGPROF sampler (99 Hz default) and the
    router fans {"op":"profile"} out to both, merging the folded stacks;
  - the merged folded document roots every backend line at
    instance:<label>, and the solver's CPU shows up as named frames with an
    `anneal` phase tag (phase attribution survives the wire);
  - the per-backend profile documents carry {rid, phase} joins for real
    routed request ids;
  - loadgen's --json summary stamps the run's wall-clock start_ts/end_ts
    window (top level and per class), so the capture can be aligned with
    the load post-hoc.

Usage: profile_smoke_test.py <qulrb_serve> <qulrb_router> <qulrb_loadgen>
                             <base-port> <json-out-dir>
"""

import json
import os
import subprocess
import sys
import time


def connect(port, attempts=100):
    import socket

    for _ in range(attempts):
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=30)
        except OSError:
            time.sleep(0.1)
    raise SystemExit("could not connect to port %d" % port)


def ask(port, line):
    s = connect(port)
    try:
        s.sendall(line.encode())
        return json.loads(s.makefile("rb").readline())
    finally:
        s.close()


def wait_for(predicate, what, attempts=150):
    for _ in range(attempts):
        try:
            if predicate():
                return
        except (OSError, ValueError, KeyError):
            pass
        time.sleep(0.1)
    raise SystemExit("timed out waiting for " + what)


def main():
    serve, router, loadgen = sys.argv[1], sys.argv[2], sys.argv[3]
    base, out_dir = int(sys.argv[4]), sys.argv[5]
    front, b1, b2 = base, base + 1, base + 2
    os.makedirs(out_dir, exist_ok=True)
    summary_path = os.path.join(out_dir, "profile_smoke_loadgen.json")

    procs = []
    try:
        for port in (b1, b2):
            procs.append(
                subprocess.Popen(
                    [serve, "--port", str(port), "--workers", "2", "--quiet"],
                    stdout=subprocess.DEVNULL,
                )
            )
        procs.append(
            subprocess.Popen(
                [
                    router,
                    "--port", str(front),
                    "--backends", "%d,%d" % (b1, b2),
                    # Round-robin so both backends burn CPU and both appear
                    # in the merged profile.
                    "--policy", "round-robin",
                    "--probe-ms", "25",
                    "--quiet",
                ]
            )
        )

        wait_for(
            lambda: ask(front, '{"op":"stats"}\n')["stats"]["healthy"] == 2,
            "both backends healthy",
        )

        # Sustained solver load through the router: enough sweeps that the
        # 99 Hz samplers land plenty of samples inside the anneal kernels.
        before = time.time()
        subprocess.run(
            [
                loadgen,
                "--connect", str(front),
                "--requests", "24",
                "--concurrency", "4",
                "--sweeps", "4000",
                "--restarts", "4",
                "--priority-classes", "2",
                "--json", summary_path,
            ],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        after = time.time()

        # Loadgen summary: the wall-clock window is stamped at the run
        # boundaries, top level and in every per-class block.
        with open(summary_path) as f:
            summary = json.load(f)
        assert before - 1 <= summary["start_ts"] <= summary["end_ts"], summary
        assert summary["end_ts"] <= after + 1, summary
        assert summary["classes"], summary
        for cls in summary["classes"]:
            assert cls["start_ts"] == summary["start_ts"], cls
            assert cls["end_ts"] == summary["end_ts"], cls

        # One command against the running fleet: merged folded profile.
        doc = ask(front, '{"op":"profile","seconds":60}\n')
        profile = doc["profile"]
        assert profile["backends"] == 2, profile
        assert profile["backends_reporting"] == 2, profile
        folded = profile["folded"]
        assert folded.strip(), "merged folded profile is empty"
        lines = folded.splitlines()
        for expect in ("instance:127.0.0.1:%d;" % b1,
                       "instance:127.0.0.1:%d;" % b2):
            assert any(l.startswith(expect) for l in lines), (
                "missing %s in merged profile" % expect)
        anneal_lines = [l for l in lines if "anneal" in l]
        assert anneal_lines, "no anneal frames in the fleet profile"
        # Phase attribution survives end to end: at least one stack is
        # tagged with a solver phase and a real routed request id.
        assert any(";phase:" in l for l in anneal_lines), anneal_lines[:3]

        rid_tagged = [l for l in lines if ";rid:" in l]
        assert rid_tagged, "no rid-attributed stacks in the fleet profile"

        # Per-backend documents carry the {rid, phase} join.
        phases = [
            p
            for entry in profile["backend_profiles"]
            if entry["profile"]
            for p in entry["profile"]["phases"]
        ]
        assert any(p["rid"] > 0 and p["phase"] for p in phases), phases

        # Direct backend capture still answers (window snapshot, instant).
        direct = ask(b1, '{"op":"profile","seconds":60}\n')["profile"]
        assert direct["source"] == "qulrb_serve", direct
        assert direct["samples"] > 0, direct

        # Clean shutdown all around.
        for port in (front, b1, b2):
            s = connect(port)
            s.sendall(b'{"op":"shutdown"}\n')
            s.close()
        for p in procs:
            assert p.wait(timeout=20) == 0, "process exited non-zero"
        print("ok: fleet profile merged, phases attributed, window stamped")
        return 0
    finally:
        for p in procs:
            if p.poll() is None:
                p.kill()


if __name__ == "__main__":
    sys.exit(main())


