#include <gtest/gtest.h>
#include "util/error.hpp"

#include "anneal/hybrid.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

using model::CqmModel;
using model::LinearExpr;
using model::Sense;
using model::State;
using model::VarId;

/// min (sum x - 3)^2 subject to sum x <= 4 over 8 variables.
CqmModel target_three() {
  CqmModel m;
  for (int i = 0; i < 8; ++i) m.add_variable();
  LinearExpr g(-3.0);
  for (VarId v = 0; v < 8; ++v) g.add_term(v, 1.0);
  m.add_squared_group(std::move(g), 1.0);
  LinearExpr cap;
  for (VarId v = 0; v < 8; ++v) cap.add_term(v, 1.0);
  m.add_constraint(std::move(cap), Sense::LE, 4.0);
  return m;
}

HybridSolverParams fast_params() {
  HybridSolverParams p;
  p.num_restarts = 2;
  p.sweeps = 200;
  p.max_penalty_rounds = 2;
  p.seed = 9;
  return p;
}

TEST(Hybrid, SolvesToyToOptimum) {
  const CqmModel m = target_three();
  const HybridSolveResult r = HybridCqmSolver(fast_params()).solve(m);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_DOUBLE_EQ(r.best.energy, 0.0);
  EXPECT_EQ(r.stats.num_variables, 8u);
  EXPECT_EQ(r.stats.num_constraints, 1u);
}

TEST(Hybrid, StatsArepopulated) {
  const HybridSolveResult r = HybridCqmSolver(fast_params()).solve(target_three());
  EXPECT_GT(r.stats.cpu_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.stats.simulated_qpu_ms, 32.0);
  EXPECT_GE(r.stats.restarts_used, 1u);
  EXPECT_GE(r.samples.size(), 1u);
}

TEST(Hybrid, PresolveInfeasibleShortCircuits) {
  CqmModel m;
  m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 1.0);
  m.add_constraint(std::move(lhs), Sense::GE, 2.0);  // impossible
  const HybridSolveResult r = HybridCqmSolver(fast_params()).solve(m);
  EXPECT_TRUE(r.stats.presolve_infeasible);
  EXPECT_FALSE(r.best.feasible);
}

TEST(Hybrid, EqualityConstraintSatisfied) {
  CqmModel m;
  for (int i = 0; i < 6; ++i) m.add_variable();
  for (VarId v = 0; v < 6; ++v) m.add_objective_linear(v, -1.0);  // wants all on
  LinearExpr sum;
  for (VarId v = 0; v < 6; ++v) sum.add_term(v, 1.0);
  m.add_constraint(std::move(sum), Sense::EQ, 2.0);  // but only 2 allowed
  const HybridSolveResult r = HybridCqmSolver(fast_params()).solve(m);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_DOUBLE_EQ(r.best.energy, -2.0);
}

TEST(Hybrid, DeterministicForSeed) {
  const CqmModel m = target_three();
  const auto a = HybridCqmSolver(fast_params()).solve(m);
  const auto b = HybridCqmSolver(fast_params()).solve(m);
  EXPECT_EQ(a.best.state, b.best.state);
  EXPECT_EQ(a.best.energy, b.best.energy);
}

TEST(Hybrid, InitialHintIsHonored) {
  // A flat objective with a tight equality: the hint is already optimal, so
  // the refinement restart must return (at least) a solution this good.
  CqmModel m;
  for (int i = 0; i < 10; ++i) m.add_variable();
  LinearExpr sum;
  for (VarId v = 0; v < 10; ++v) sum.add_term(v, 1.0);
  m.add_constraint(std::move(sum), Sense::EQ, 5.0);
  HybridSolverParams p = fast_params();
  p.initial_hint = State{1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  const HybridSolveResult r = HybridCqmSolver(p).solve(m);
  EXPECT_TRUE(r.best.feasible);
}

TEST(Hybrid, GreedyDescentReachesLocalMinimum) {
  CqmModel m;
  for (int i = 0; i < 5; ++i) m.add_variable();
  for (VarId v = 0; v < 5; ++v) m.add_objective_linear(v, -1.0);
  util::Rng rng(4);
  CqmIncrementalState walk(m, State(5, 0), {});
  HybridCqmSolver::greedy_descent(walk, rng);
  EXPECT_DOUBLE_EQ(walk.objective(), -5.0);  // all bits turned on
}

TEST(Hybrid, ThreadedRestartsMatchSequentialQuality) {
  const CqmModel m = target_three();
  HybridSolverParams p = fast_params();
  p.threads = 4;
  p.num_restarts = 4;
  const HybridSolveResult r = HybridCqmSolver(p).solve(m);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_DOUBLE_EQ(r.best.energy, 0.0);
}

TEST(Hybrid, ZeroVariableModel) {
  CqmModel m;
  m.add_objective_offset(5.0);
  const HybridSolveResult r = HybridCqmSolver(fast_params()).solve(m);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_DOUBLE_EQ(r.best.energy, 5.0);
}

TEST(Hybrid, RefinementSkippedWhenZerosInfeasible) {
  // All-zeros violates the GE constraint; the solver must still find the
  // optimum via penalty annealing.
  CqmModel m;
  for (int i = 0; i < 6; ++i) m.add_variable();
  for (VarId v = 0; v < 6; ++v) m.add_objective_linear(v, 1.0);
  LinearExpr sum;
  for (VarId v = 0; v < 6; ++v) sum.add_term(v, 1.0);
  m.add_constraint(std::move(sum), Sense::GE, 2.0);
  const HybridSolveResult r = HybridCqmSolver(fast_params()).solve(m);
  EXPECT_TRUE(r.best.feasible);
  EXPECT_DOUBLE_EQ(r.best.energy, 2.0);
}

}  // namespace
}  // namespace qulrb::anneal
