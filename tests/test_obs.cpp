#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>

#include "anneal/sa.hpp"
#include "io/json_value.hpp"
#include "model/qubo.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"

namespace qulrb::obs {
namespace {

// ------------------------------------------------------------ counters -----

TEST(Counter, ExactUnderConcurrency) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  Counter counter;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, BulkIncrement) {
  Counter counter;
  counter.inc(41);
  counter.inc();
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  g.set(3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.update_max(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);  // max never lowers
  g.update_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

// ----------------------------------------------------------- histogram -----

TEST(LogHistogram, ExactTotalsUnderConcurrency) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  LogHistogram hist;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        hist.observe(0.5 + static_cast<double>((t + i) % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);

  // The double sum is an exact CAS accumulation of exactly representable
  // halves, so the total is deterministic too (addition order varies, but
  // every addend is a multiple of 0.5 well within the mantissa).
  double expected_sum = 0.0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      expected_sum += 0.5 + static_cast<double>((t + i) % 100);
    }
  }
  EXPECT_NEAR(hist.sum(), expected_sum, 1e-6 * expected_sum);

  // Bucket counts add back up to the total.
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < hist.num_buckets(); ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(LogHistogram, BucketEdgesMonotone) {
  LogHistogram hist;
  double prev = 0.0;
  for (std::size_t b = 0; b + 1 < hist.num_buckets(); ++b) {
    const double edge = hist.upper_edge(b);
    EXPECT_GT(edge, prev);
    prev = edge;
  }
  EXPECT_TRUE(std::isinf(hist.upper_edge(hist.num_buckets() - 1)));
}

TEST(LogHistogram, QuantileBracketsObservations) {
  LogHistogram hist;
  for (int i = 0; i < 1000; ++i) hist.observe(10.0);
  const double p50 = hist.quantile(0.5);
  // One bucket holds everything; the quantile interpolates inside it.
  EXPECT_GE(p50, hist.upper_edge(hist.bucket_of(10.0) - 1));
  EXPECT_LE(p50, hist.upper_edge(hist.bucket_of(10.0)));
}

TEST(LogHistogram, MergeAddsExactTotals) {
  LogHistogram a, b;
  for (int i = 0; i < 100; ++i) a.observe(1.0);
  for (int i = 0; i < 50; ++i) b.observe(64.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 150u);
  EXPECT_DOUBLE_EQ(a.sum(), 100.0 * 1.0 + 50.0 * 64.0);
  EXPECT_EQ(a.bucket_count(a.bucket_of(64.0)), 50u);
  // The source histogram is untouched.
  EXPECT_EQ(b.count(), 50u);
}

TEST(LogHistogram, MergeRejectsMismatchedLayouts) {
  LogHistogram a;
  HistogramLayout other;
  other.buckets = 12;
  LogHistogram b(other);
  EXPECT_THROW(a.merge(b), std::exception);
}

TEST(LogHistogram, MergeIsExactUnderConcurrency) {
  // Writers keep observing into `a` while other threads merge `b` into it
  // repeatedly; once everyone quiesces the totals must be exact.
  constexpr std::size_t kObservers = 2, kMergers = 2;
  constexpr std::size_t kObserves = 20000, kMerges = 5;
  LogHistogram a, b;
  for (int i = 0; i < 1000; ++i) b.observe(2.0);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kObservers; ++t) {
    threads.emplace_back([&a] {
      for (std::size_t i = 0; i < kObserves; ++i) a.observe(8.0);
    });
  }
  for (std::size_t t = 0; t < kMergers; ++t) {
    threads.emplace_back([&a, &b] {
      for (std::size_t i = 0; i < kMerges; ++i) a.merge(b);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(a.count(), kObservers * kObserves + kMergers * kMerges * 1000);
  EXPECT_DOUBLE_EQ(a.sum(),
                   static_cast<double>(kObservers * kObserves) * 8.0 +
                       static_cast<double>(kMergers * kMerges * 1000) * 2.0);
}

TEST(LogHistogram, QuantileWithinOneBucketWidth) {
  // The documented error bound: a quantile is good to one bucket width,
  // i.e. within a factor 2^(1/buckets_per_octave) of the true value.
  LogHistogram hist;
  const double factor =
      std::pow(2.0, 1.0 / hist.layout().buckets_per_octave);
  for (const double v : {0.01, 0.7, 10.0, 900.0}) {
    LogHistogram h;
    for (int i = 0; i < 1000; ++i) h.observe(v);
    for (const double q : {0.05, 0.5, 0.95}) {
      const double estimate = h.quantile(q);
      EXPECT_LE(estimate, v * factor) << "v=" << v << " q=" << q;
      EXPECT_GE(estimate, v / factor) << "v=" << v << " q=" << q;
    }
  }
}

// ------------------------------------------------------------ registry -----

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("test_requests_total", "Requests", "kind=\"a\"").inc(3);
  registry.counter("test_requests_total", "Requests", "kind=\"b\"").inc(1);
  registry.gauge("test_depth", "Depth").set(7.0);
  registry.histogram("test_ms", "Latency").observe(2.0);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE test_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_requests_total{kind=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("test_requests_total{kind=\"b\"} 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("test_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_ms_count 1"), std::string::npos);
  // HELP/TYPE appear once per family even with two labelled children.
  const auto first = text.find("# TYPE test_requests_total");
  EXPECT_EQ(text.find("# TYPE test_requests_total", first + 1),
            std::string::npos);
}

TEST(MetricsRegistry, GroupsInterleavedFamilies) {
  // Registration order interleaves two families; the exposition must still
  // emit each family's HELP/TYPE exactly once, with all children together.
  MetricsRegistry registry;
  using Labels = MetricsRegistry::Labels;
  registry.counter("test_fam_a_total", "A", Labels{{"k", "1"}}).inc();
  registry.counter("test_fam_b_total", "B").inc();
  registry.counter("test_fam_a_total", "A", Labels{{"k", "2"}}).inc(2);

  const std::string text = registry.to_prometheus();
  const auto type_a = text.find("# TYPE test_fam_a_total counter");
  ASSERT_NE(type_a, std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_fam_a_total", type_a + 1),
            std::string::npos);
  const auto child1 = text.find("test_fam_a_total{k=\"1\"} 1");
  const auto child2 = text.find("test_fam_a_total{k=\"2\"} 2");
  const auto type_b = text.find("# TYPE test_fam_b_total counter");
  ASSERT_NE(child1, std::string::npos);
  ASSERT_NE(child2, std::string::npos);
  ASSERT_NE(type_b, std::string::npos);
  // Both a-children precede family b: no family is split by another.
  EXPECT_LT(child1, child2);
  EXPECT_LT(child2, type_b);
}

TEST(MetricsRegistry, EscapesLabelValues) {
  // Prometheus text exposition: label values must escape backslash, double
  // quote, and newline.
  MetricsRegistry registry;
  using Labels = MetricsRegistry::Labels;
  registry
      .counter("test_escape_total", "Escapes",
               Labels{{"path", "a\\b"}, {"msg", "say \"hi\"\nbye"}})
      .inc();

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos) << text;
  EXPECT_NE(text.find("msg=\"say \\\"hi\\\"\\nbye\""), std::string::npos)
      << text;
  // The raw newline must NOT appear inside the sample line.
  EXPECT_EQ(text.find("say \"hi\"\n"), std::string::npos);
}

TEST(MetricsRegistry, EscapesHelpText) {
  MetricsRegistry registry;
  registry.counter("test_help_total", "line one\nline two").inc();
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# HELP test_help_total line one\\nline two"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistry, StableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test_x_total", "X");
  Counter& b = registry.counter("test_x_total", "X");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("test_y_total", "Y");
  EXPECT_THROW(registry.gauge("test_y_total", "Y"), std::exception);
}

// ------------------------------------------------------------- recorder ----

TEST(Recorder, PerfettoJsonWellFormed) {
  Recorder rec("unit-test");
  rec.annotate("case", "well-formed");
  rec.name_track(1, "restart 0");
  {
    Recorder::Span span(&rec, "phase-a", "test", 0);
  }
  rec.sample("incumbent_energy", 1, 12.5);
  rec.sample("incumbent_energy", 1, 11.0);

  const std::string json = to_perfetto_json(rec);
  const io::JsonValue doc = io::JsonValue::parse(json);
  ASSERT_TRUE(doc.is_object());
  const io::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_process_name = false, saw_complete = false, saw_counter = false;
  for (const io::JsonValue& event : events->as_array()) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "M" && event.string_or("name", "") == "process_name") {
      saw_process_name = true;
    }
    if (ph == "X" && event.string_or("name", "") == "phase-a") {
      saw_complete = true;
      EXPECT_GE(event.number_or("dur", -1.0), 0.0);
    }
    if (ph == "C") saw_counter = true;
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_counter);
  const io::JsonValue* metadata = doc.find("metadata");
  ASSERT_NE(metadata, nullptr);
  EXPECT_EQ(metadata->string_or("case", ""), "well-formed");
}

TEST(Recorder, NowUsStrictlyMonotonicAcrossThreads) {
  // The timestamp watermark: two calls never return the same value and every
  // thread sees its own calls strictly increase, even under contention where
  // raw steady_clock reads routinely tie.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCalls = 20000;
  Recorder rec;
  std::vector<std::vector<double>> stamps(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &stamps, t] {
      stamps[t].reserve(kCalls);
      for (std::size_t i = 0; i < kCalls; ++i) {
        stamps[t].push_back(rec.now_us());
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<double> all;
  all.reserve(kThreads * kCalls);
  for (const auto& per_thread : stamps) {
    for (std::size_t i = 1; i < per_thread.size(); ++i) {
      ASSERT_LT(per_thread[i - 1], per_thread[i]);
    }
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate timestamp issued";
}

TEST(Recorder, OwnedSamplesExportAsCounters) {
  Recorder rec("owned");
  rec.sample_at("violation/capacity", 0, 5.0, 3.5);
  rec.sample_named("violation/balance", 2, 1.0);
  const std::string json = to_perfetto_json(rec);
  const io::JsonValue doc = io::JsonValue::parse(json);
  const io::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_main = false, saw_suffixed = false;
  for (const io::JsonValue& event : events->as_array()) {
    if (event.string_or("ph", "") != "C") continue;
    const std::string name = event.string_or("name", "");
    if (name == "violation/capacity") saw_main = true;
    if (name == "violation/balance/t2") saw_suffixed = true;
  }
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_suffixed);
}

TEST(Recorder, NullRecorderSpansAreInert) {
  // The null-object discipline of the disabled path: no recorder, no effect.
  Recorder::Span outer(nullptr, "never", "test", 0);
  outer.close();
  SUCCEED();
}

// ---------------------------------------------------------- determinism ----

model::QuboModel ring_qubo(std::size_t n) {
  model::QuboModel q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.add_linear(static_cast<model::VarId>(i), (i % 2 == 0) ? -1.0 : 0.5);
    q.add_quadratic(static_cast<model::VarId>(i),
                    static_cast<model::VarId>((i + 1) % n), 0.75);
  }
  return q;
}

TEST(Recorder, SamplerOutputBitwiseIdenticalWithRecordingOn) {
  const model::QuboModel qubo = ring_qubo(12);

  anneal::SaParams plain;
  plain.sweeps = 400;
  plain.num_reads = 4;
  plain.seed = 77;
  const anneal::SampleSet base = anneal::SimulatedAnnealer(plain).sample(qubo);

  Recorder rec("determinism");
  obs::Counter sweeps;
  anneal::SaParams recorded = plain;
  recorded.recorder = &rec;
  recorded.sweep_counter = &sweeps;
  const anneal::SampleSet traced =
      anneal::SimulatedAnnealer(recorded).sample(qubo);

  // Recording consumes no RNG, so the runs are bitwise identical: same
  // states in the same order, same energies to the last bit.
  ASSERT_EQ(base.size(), traced.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i).state, traced.at(i).state);
    EXPECT_EQ(base.at(i).energy, traced.at(i).energy);
    EXPECT_EQ(base.at(i).violation, traced.at(i).violation);
  }
  EXPECT_EQ(sweeps.value(), plain.sweeps * plain.num_reads);
  EXPECT_FALSE(rec.spans().empty());
}

TEST(Recorder, SamplerOutputBitwiseIdenticalWithProfilingOn) {
  const model::QuboModel qubo = ring_qubo(12);

  anneal::SaParams plain;
  plain.sweeps = 400;
  plain.num_reads = 4;
  plain.seed = 77;
  const anneal::SampleSet base = anneal::SimulatedAnnealer(plain).sample(qubo);

  // The CPU sampler interrupts the solve asynchronously but touches no RNG
  // and no solver state — the same zero-cost-off contract recording has:
  // profiled runs are bitwise identical to bare ones.
  Profiler profiler;
  ASSERT_TRUE(profiler.start());
  anneal::SampleSet profiled;
  {
    prof::RidScope rid_scope(9);
    prof::PhaseScope phase_scope("determinism");
    profiled = anneal::SimulatedAnnealer(plain).sample(qubo);
  }
  profiler.stop();

  ASSERT_EQ(base.size(), profiled.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i).state, profiled.at(i).state);
    EXPECT_EQ(base.at(i).energy, profiled.at(i).energy);
    EXPECT_EQ(base.at(i).violation, profiled.at(i).violation);
  }
}

// ------------------------------------------------------ flight recorder ----

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(65).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(4096).capacity(), 4096u);
}

TEST(FlightRecorder, InternIsStableAndRoundTrips) {
  FlightRecorder rec(64);
  const std::uint16_t a = rec.intern("solve");
  const std::uint16_t b = rec.intern("route");
  EXPECT_NE(a, 0);  // code 0 is reserved for "?"
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.intern("solve"), a);
  EXPECT_EQ(rec.name_of(a), "solve");
  EXPECT_EQ(rec.name_of(b), "route");
  EXPECT_EQ(rec.name_of(0), "?");
  EXPECT_EQ(rec.name_of(9999), "?");
}

TEST(FlightRecorder, RecordsRoundTripThroughSnapshot) {
  FlightRecorder rec(64);
  const std::uint16_t solve = rec.intern("solve");
  const std::uint16_t depth = rec.intern("queue-depth");
  const double t0 = rec.now_us();
  const double t1 = rec.now_us();
  rec.span(solve, /*track=*/3, /*rid=*/42, t0, t1);
  rec.instant(solve, 0, 7, /*value=*/1.5);
  rec.counter(depth, 1, 0, /*value=*/12.0);

  const std::vector<FlightRecord> records = rec.snapshot(-1.0);
  ASSERT_EQ(records.size(), 3u);
  // Sorted by timestamp: the span ends at t1 which precedes the instants'
  // now_us() stamps.
  EXPECT_EQ(records[0].kind, FlightKind::kSpan);
  EXPECT_EQ(records[0].name, solve);
  EXPECT_EQ(records[0].track, 3u);
  EXPECT_EQ(records[0].rid, 42u);
  EXPECT_DOUBLE_EQ(records[0].t_us, t1);
  EXPECT_DOUBLE_EQ(records[0].dur_us, t1 - t0);
  EXPECT_EQ(records[1].kind, FlightKind::kInstant);
  EXPECT_DOUBLE_EQ(records[1].value, 1.5);
  EXPECT_EQ(records[2].kind, FlightKind::kCounter);
  EXPECT_DOUBLE_EQ(records[2].value, 12.0);
}

TEST(FlightRecorder, SnapshotWindowDropsOldRecords) {
  FlightRecorder rec(64);
  const std::uint16_t name = rec.intern("ev");
  // An "old" record stamped well before the window and a fresh one now.
  rec.record(name, FlightKind::kInstant, 0, 1, rec.now_us() - 10e6, 0.0, 0.0);
  rec.instant(name, 0, 2);
  const std::vector<FlightRecord> recent = rec.snapshot(1e6);  // last 1 s
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].rid, 2u);
  EXPECT_EQ(rec.snapshot(-1.0).size(), 2u);
}

TEST(FlightRecorder, WraparoundKeepsNewestCapacityRecords) {
  FlightRecorder rec(64);
  const std::uint16_t name = rec.intern("ev");
  constexpr std::uint64_t kWrites = 200;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    rec.instant(name, 0, /*rid=*/i + 1);
  }
  EXPECT_EQ(rec.total_records(), kWrites);
  const std::vector<FlightRecord> records = rec.snapshot(-1.0);
  ASSERT_EQ(records.size(), rec.capacity());
  // Exactly the newest capacity() records survive, in ticket order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ticket, kWrites - rec.capacity() + i);
    EXPECT_EQ(records[i].rid, records[i].ticket + 1);
  }
}

TEST(FlightRecorder, NoTornRecordsUnderEightThreadWritePressure) {
  // The satellite's torn-record hunt: 8 writers hammer a small ring (forcing
  // constant wraparound) while a reader snapshots concurrently. Every
  // surfaced record must be internally consistent — its rid-encoded
  // (thread, i) identity must match its track and value — and snapshot
  // timestamps must be strictly monotonic (now_us never ties).
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 30000;
  FlightRecorder rec(256);
  const std::uint16_t name = rec.intern("pressure");

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn_or_wrong{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::vector<FlightRecord> records = rec.snapshot(-1.0);
      double prev_t = -1.0;
      for (const FlightRecord& r : records) {
        const std::uint64_t t = r.rid >> 32;
        const std::uint64_t i = r.rid & 0xffffffffu;
        const double expect_value = static_cast<double>(t * 1000003u + i);
        if (r.track != t || r.value != expect_value || r.name != name ||
            !(r.t_us > prev_t)) {
          torn_or_wrong.fetch_add(1, std::memory_order_relaxed);
        }
        prev_t = r.t_us;
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, name, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        rec.instant(name, t, (static_cast<std::uint64_t>(t) << 32) | i,
                    static_cast<double>(t * 1000003u + i));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(torn_or_wrong.load(), 0u);
  EXPECT_EQ(rec.total_records(), kThreads * kPerThread);
  // Quiesced: the final snapshot is a full, consistent ring.
  EXPECT_EQ(rec.snapshot(-1.0).size(), rec.capacity());
}

TEST(FlightRecorder, PerfettoDumpWellFormedAndTagged) {
  FlightRecorder rec(64);
  const std::uint16_t solve = rec.intern("solve");
  const std::uint16_t depth = rec.intern("queue-depth");
  const double t0 = rec.now_us();
  rec.span(solve, 2, 42, t0, rec.now_us());
  rec.instant(solve, 0, 42, 3.0);
  rec.counter(depth, 1, 0, 5.0);

  const std::string json =
      flight_to_perfetto_json(rec, /*window_s=*/0.0, /*trigger_rid=*/42,
                              "slo-burn", "unit-test");
  const io::JsonValue doc = io::JsonValue::parse(json);
  ASSERT_TRUE(doc.is_object());
  const io::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 3u);
  bool saw_span = false, saw_instant = false, saw_counter = false;
  for (const io::JsonValue& event : events->as_array()) {
    const std::string ph = event.string_or("ph", "");
    const io::JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(event.string_or("name", ""), "solve");
      EXPECT_GE(event.number_or("dur", -1.0), 0.0);
      EXPECT_EQ(args->int_or("rid", -1), 42);
    }
    if (ph == "i") saw_instant = true;
    if (ph == "C") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(args->number_or("queue-depth", -1.0), 5.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  const io::JsonValue* metadata = doc.find("metadata");
  ASSERT_NE(metadata, nullptr);
  EXPECT_EQ(metadata->int_or("trigger_rid", -1), 42);
  EXPECT_EQ(metadata->string_or("trigger", ""), "slo-burn");
  EXPECT_EQ(metadata->string_or("source", ""), "unit-test");
  EXPECT_EQ(metadata->int_or("records", -1), 3);
}

// ------------------------------------------------------ event log cap ------

TEST(EventLog, RotatesAtSizeCapWithCompleteLines) {
  const std::string path = ::testing::TempDir() + "qulrb_eventlog_rot.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  {
    EventLog log(path, /*append=*/false, /*max_bytes=*/512);
    SolveEvent event;
    event.source = "unit-test";
    event.solver = "qcqm1";
    event.outcome = "ok";
    for (int i = 0; i < 64; ++i) {
      event.request_id = static_cast<std::uint64_t>(i + 1);
      log.log(event);
    }
    EXPECT_GE(log.rotations(), 1u);
    EXPECT_EQ(log.lines_written(), 64u);
  }
  // Both generations exist and hold only complete, parsable JSON lines.
  std::size_t lines = 0;
  for (const std::string& p : {path, path + ".1"}) {
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::string line;
    while (std::getline(in, line)) {
      const io::JsonValue doc = io::JsonValue::parse(line);
      EXPECT_EQ(doc.string_or("source", ""), "unit-test");
      ++lines;
    }
    // The live generation stays under the cap.
    in.clear();
    in.seekg(0, std::ios::end);
    EXPECT_LE(in.tellg(), 512);
  }
  EXPECT_GT(lines, 0u);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(EventLog, UncappedNeverRotates) {
  const std::string path = ::testing::TempDir() + "qulrb_eventlog_uncapped.jsonl";
  std::remove(path.c_str());
  {
    EventLog log(path, /*append=*/false);
    SolveEvent event;
    event.source = "unit-test";
    for (int i = 0; i < 32; ++i) log.log(event);
    EXPECT_EQ(log.rotations(), 0u);
    EXPECT_EQ(log.lines_written(), 32u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qulrb::obs
