#include <gtest/gtest.h>

#include <limits>

#include "anneal/sa.hpp"
#include "anneal/tabu.hpp"
#include "model/cqm_to_qubo.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/quantum_solver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

using model::QuboModel;
using model::State;
using model::VarId;

double brute_min(const QuboModel& q) {
  double best = std::numeric_limits<double>::infinity();
  for (unsigned bits = 0; bits < (1u << q.num_variables()); ++bits) {
    State s(q.num_variables());
    for (std::size_t i = 0; i < q.num_variables(); ++i) s[i] = (bits >> i) & 1u;
    best = std::min(best, q.energy(s));
  }
  return best;
}

TEST(Tabu, SolvesTrivialLinearModel) {
  QuboModel q(6);
  for (VarId v = 0; v < 6; ++v) q.add_linear(v, v % 2 == 0 ? 1.0 : -1.0);
  const auto best = TabuSampler(TabuParams{}).sample(q).best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->energy, -3.0);
}

TEST(Tabu, ReachesBruteForceOptimumOnRandomInstances) {
  util::Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    QuboModel q(12);
    for (VarId i = 0; i < 12; ++i) q.add_linear(i, rng.next_normal());
    for (VarId i = 0; i < 12; ++i) {
      for (VarId j = i + 1; j < 12; ++j) {
        if (rng.next_bool(0.4)) q.add_quadratic(i, j, rng.next_normal());
      }
    }
    TabuParams params;
    params.seed = static_cast<std::uint64_t>(trial) + 1;
    params.max_iterations = 4000;
    const auto best = TabuSampler(params).sample(q).best();
    ASSERT_TRUE(best.has_value());
    EXPECT_NEAR(best->energy, brute_min(q), 1e-9) << "trial " << trial;
  }
}

TEST(Tabu, ReportedEnergyMatchesState) {
  util::Rng rng(9);
  QuboModel q(10);
  for (VarId i = 0; i < 10; ++i) q.add_linear(i, rng.next_normal());
  for (VarId i = 0; i < 10; ++i) {
    for (VarId j = i + 1; j < 10; ++j) {
      if (rng.next_bool(0.5)) q.add_quadratic(i, j, rng.next_normal());
    }
  }
  const auto set = TabuSampler(TabuParams{}).sample(q);
  for (std::size_t s = 0; s < set.size(); ++s) {
    EXPECT_NEAR(q.energy(set.at(s).state), set.at(s).energy, 1e-9);
  }
}

TEST(Tabu, EscapesLocalMinimumSaCanMissAtZeroTemperature) {
  // A two-well landscape: pure descent from the wrong side stalls, tabu's
  // memory forces it across the barrier.
  QuboModel q(4);
  // E = (x0+x1+x2+x3 - 3)^2 - 2 x3: optimum 1110 with x3 on.
  model::LinearExpr g(-3.0);
  for (VarId v = 0; v < 4; ++v) g.add_term(v, 1.0);
  g.normalize();
  q.add_squared_expr(g, 1.0);
  q.add_linear(3, -2.0);
  TabuParams params;
  params.seed = 3;
  const auto best = TabuSampler(params).sample(q).best();
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->energy, brute_min(q), 1e-9);
}

TEST(Tabu, DeterministicForSeed) {
  QuboModel q(8);
  util::Rng rng(3);
  for (VarId v = 0; v < 8; ++v) q.add_linear(v, rng.next_normal());
  TabuParams params;
  params.seed = 42;
  const auto a = TabuSampler(params).sample(q).best();
  const auto b = TabuSampler(params).sample(q).best();
  EXPECT_EQ(a->state, b->state);
  EXPECT_EQ(a->energy, b->energy);
}

TEST(Tabu, RespectsInitialState) {
  QuboModel q(4);  // flat landscape
  util::Rng rng(1);
  TabuParams params;
  params.max_iterations = 10;
  const State init{1, 0, 1, 0};
  const Sample s = TabuSampler(params).search_once(q, rng, init);
  EXPECT_DOUBLE_EQ(s.energy, 0.0);
}

TEST(Tabu, ZeroVariableModel) {
  QuboModel q(0);
  q.add_offset(2.0);
  const auto best = TabuSampler(TabuParams{}).sample(q).best();
  EXPECT_DOUBLE_EQ(best->energy, 2.0);
}

TEST(Tabu, DecodesToValidPlanOnLrpQubo) {
  // On the LRP penalty QUBO (rugged landscape with huge penalty deltas) the
  // deterministic tabu walk is not guaranteed to beat SA, but it must land
  // at a state whose decode survives repair into a valid plan and whose
  // energy is far below a random assignment's.
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({3.0, 1.5, 1.0}, 8);
  const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, 10);
  model::PenaltyOptions penalty;
  penalty.inequality = model::InequalityMethod::kUnbalanced;  // no slack bits
  const auto conv = model::cqm_to_qubo(cqm.cqm(), penalty);

  TabuParams params;
  params.seed = 7;
  params.max_iterations = 8000;
  const auto best = TabuSampler(params).sample(conv.qubo).best();
  ASSERT_TRUE(best.has_value());

  // Random-assignment yardstick.
  util::Rng rng(11);
  double random_mean = 0.0;
  for (int trial = 0; trial < 32; ++trial) {
    State s(conv.qubo.num_variables());
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
    random_mean += conv.qubo.energy(s);
  }
  random_mean /= 32.0;
  EXPECT_LT(best->energy, random_mean * 0.5);

  lrp::MigrationPlan plan = cqm.decode(conv.project(best->state));
  lrp::repair_plan(problem, plan);
  EXPECT_NO_THROW(plan.validate(problem));
}

}  // namespace
}  // namespace qulrb::anneal
