#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "io/json_value.hpp"
#include "obs/build_info.hpp"
#include "obs/histogram_wire.hpp"
#include "obs/metrics.hpp"
#include "router/federation.hpp"

namespace qulrb::router {
namespace {

using obs::HistogramLayout;
using obs::LogHistogram;
using obs::MetricsRegistry;

// ------------------------------------------------- histogram wire codec ----

TEST(HistogramWire, RoundTripsExactly) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(1.0);
  for (int i = 0; i < 7; ++i) h.observe(64.0);
  h.observe(1e-9);  // underflow bucket
  h.observe(1e12);  // overflow bucket

  const io::JsonValue doc = io::JsonValue::parse(obs::histogram_to_json(h));
  HistogramLayout layout;
  ASSERT_TRUE(obs::histogram_layout_from_json(doc, layout));
  EXPECT_EQ(layout.buckets, h.layout().buckets);

  LogHistogram back(layout);
  ASSERT_TRUE(obs::merge_histogram_json(doc, back));
  EXPECT_EQ(back.count(), h.count());
  // Bucket counts are integers and round-trip exactly; the sum is a double
  // serialized at 12 significant digits.
  EXPECT_NEAR(back.sum(), h.sum(), 1e-11 * h.sum());
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    EXPECT_EQ(back.bucket_count(b), h.bucket_count(b)) << "bucket " << b;
  }
}

TEST(HistogramWire, RoundTripsAcrossWriterStripes) {
  // Concurrent observers spread counts across the histogram's internal
  // stripes; the wire form must fold them — stripes are a writer-side
  // detail, never visible on the wire.
  LogHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 5000; ++i) {
        h.observe(static_cast<double>(1 << (t % 4)));
      }
    });
  }
  for (auto& t : threads) t.join();

  const io::JsonValue doc = io::JsonValue::parse(obs::histogram_to_json(h));
  LogHistogram back;
  ASSERT_TRUE(obs::merge_histogram_json(doc, back));
  EXPECT_EQ(back.count(), 8u * 5000u);
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    EXPECT_EQ(back.bucket_count(b), h.bucket_count(b));
  }
}

TEST(HistogramWire, EmptyHistogramRoundTrips) {
  LogHistogram empty;
  const io::JsonValue doc =
      io::JsonValue::parse(obs::histogram_to_json(empty));
  LogHistogram back;
  ASSERT_TRUE(obs::merge_histogram_json(doc, back));
  EXPECT_EQ(back.count(), 0u);
  EXPECT_DOUBLE_EQ(back.sum(), 0.0);
}

TEST(HistogramWire, NonDefaultLayoutRoundTrips) {
  HistogramLayout layout;
  layout.lo = 0.5;
  layout.buckets = 12;
  layout.buckets_per_octave = 1.0;
  LogHistogram h(layout);
  for (int i = 0; i < 9; ++i) h.observe(2.0);

  const io::JsonValue doc = io::JsonValue::parse(obs::histogram_to_json(h));
  HistogramLayout parsed;
  ASSERT_TRUE(obs::histogram_layout_from_json(doc, parsed));
  EXPECT_DOUBLE_EQ(parsed.lo, 0.5);
  EXPECT_EQ(parsed.buckets, 12u);
  LogHistogram back(parsed);
  ASSERT_TRUE(obs::merge_histogram_json(doc, back));
  EXPECT_EQ(back.count(), 9u);
}

TEST(HistogramWire, MergeRejectsLayoutMismatchUntouched) {
  HistogramLayout other;
  other.buckets = 12;
  LogHistogram h(other);
  h.observe(1.0);
  const io::JsonValue doc = io::JsonValue::parse(obs::histogram_to_json(h));

  LogHistogram target;  // default layout, 58 buckets
  target.observe(3.0);
  EXPECT_FALSE(obs::merge_histogram_json(doc, target));
  EXPECT_EQ(target.count(), 1u);  // untouched
  EXPECT_DOUBLE_EQ(target.sum(), 3.0);
}

TEST(HistogramWire, SerializedMergeMatchesLiveMerge) {
  // The federation exactness guarantee: merging two serialized histograms
  // is bit-identical to merging the live ones.
  LogHistogram a, b;
  for (int i = 0; i < 123; ++i) a.observe(0.7);
  for (int i = 0; i < 45; ++i) b.observe(900.0);
  for (int i = 0; i < 6; ++i) b.observe(0.7);

  LogHistogram via_wire;
  ASSERT_TRUE(obs::merge_histogram_json(
      io::JsonValue::parse(obs::histogram_to_json(a)), via_wire));
  ASSERT_TRUE(obs::merge_histogram_json(
      io::JsonValue::parse(obs::histogram_to_json(b)), via_wire));

  LogHistogram live;
  live.merge(a);
  live.merge(b);

  EXPECT_EQ(via_wire.count(), live.count());
  EXPECT_DOUBLE_EQ(via_wire.sum(), live.sum());
  for (std::size_t bk = 0; bk < live.num_buckets(); ++bk) {
    EXPECT_EQ(via_wire.bucket_count(bk), live.bucket_count(bk));
  }
}

// --------------------------------------------------------- build info ------

TEST(BuildInfo, ExpositionConformance) {
  MetricsRegistry registry;
  obs::register_build_info(registry, obs::build_info("avx2"), "serve");
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE qulrb_build_info gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find("qulrb_build_info{"), std::string::npos);
  for (const char* label : {"version=", "revision=", "build=",
                            "qulrb_simd_level=\"avx2\"", "role=\"serve\""}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
  EXPECT_NE(text.find("} 1"), std::string::npos);
}

// ---------------------------------------------------------- federation -----

/// A serve-shaped obs response document around one registry.
std::string obs_doc(const MetricsRegistry& registry) {
  io::JsonWriter w;
  w.begin_object();
  w.field("role", "serve");
  w.key("registry");
  obs::write_registry_obs_json(registry, w);
  w.end_object();
  return w.str();
}

bool feed(Federation& federation, std::size_t backend,
          const std::string& label, const std::string& raw, double now_ms) {
  const io::JsonValue doc = io::JsonValue::parse(raw);
  return federation.update(backend, label, raw, doc, now_ms);
}

TEST(Federation, MergesCountersGaugesAndHistogramsExactly) {
  MetricsRegistry a;
  a.counter("qulrb_service_requests_total", "Requests").inc(3);
  a.gauge("qulrb_service_queue_depth", "Depth").set(2.0);
  for (int i = 0; i < 10; ++i) {
    a.histogram("qulrb_service_request_ms", "Latency").observe(4.0);
  }
  MetricsRegistry b;
  b.counter("qulrb_service_requests_total", "Requests").inc(4);
  b.gauge("qulrb_service_queue_depth", "Depth").set(5.0);
  for (int i = 0; i < 6; ++i) {
    b.histogram("qulrb_service_request_ms", "Latency").observe(64.0);
  }

  Federation federation(2);
  ASSERT_TRUE(feed(federation, 0, "127.0.0.1:7471", obs_doc(a), 10.0));
  ASSERT_TRUE(feed(federation, 1, "127.0.0.1:7472", obs_doc(b), 11.0));
  EXPECT_EQ(federation.reporting(), 2u);

  const std::string text = federation.fleet_prometheus();
  EXPECT_NE(text.find("qulrb_fleet_service_requests_total 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("qulrb_fleet_service_queue_depth 7"), std::string::npos)
      << text;
  // Histogram merge is exact: 16 observations, sum 10*4 + 6*64.
  EXPECT_NE(text.find("qulrb_fleet_service_request_ms_count 16"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("qulrb_fleet_service_request_ms_sum 424"),
            std::string::npos)
      << text;
  // Coverage gauges ride along.
  EXPECT_NE(text.find("qulrb_fleet_backends 2"), std::string::npos);
  EXPECT_NE(text.find("qulrb_fleet_backends_reporting 2"), std::string::npos);
}

TEST(Federation, BuildInfoStaysPerInstance) {
  MetricsRegistry a;
  obs::register_build_info(a, obs::build_info("avx2"), "serve");
  MetricsRegistry b;
  obs::register_build_info(b, obs::build_info("scalar"), "serve");

  Federation federation(2);
  ASSERT_TRUE(feed(federation, 0, "127.0.0.1:7471", obs_doc(a), 10.0));
  ASSERT_TRUE(feed(federation, 1, "127.0.0.1:7472", obs_doc(b), 10.0));

  const std::string text = federation.fleet_prometheus();
  // Identity is never merged or renamed: one child per backend, tagged with
  // its instance, under the original family name.
  EXPECT_EQ(text.find("qulrb_fleet_build_info"), std::string::npos) << text;
  EXPECT_NE(text.find("instance=\"127.0.0.1:7471\""), std::string::npos);
  EXPECT_NE(text.find("instance=\"127.0.0.1:7472\""), std::string::npos);
  EXPECT_NE(text.find("qulrb_simd_level=\"avx2\""), std::string::npos);
  EXPECT_NE(text.find("qulrb_simd_level=\"scalar\""), std::string::npos);
}

TEST(Federation, MalformedUpdateLeavesSnapshotUntouched) {
  MetricsRegistry a;
  a.counter("qulrb_x_total", "X").inc(3);

  Federation federation(1);
  ASSERT_TRUE(feed(federation, 0, "127.0.0.1:7471", obs_doc(a), 10.0));
  EXPECT_EQ(federation.reporting(), 1u);

  // Not a registry serialization: rejected, prior snapshot survives.
  EXPECT_FALSE(feed(federation, 0, "127.0.0.1:7471", "{\"role\":\"serve\"}",
                    20.0));
  EXPECT_FALSE(feed(federation, 0, "127.0.0.1:7471", "[1,2,3]", 20.0));
  EXPECT_EQ(federation.reporting(), 1u);
  EXPECT_NE(federation.fleet_prometheus().find("qulrb_fleet_x_total 3"),
            std::string::npos);
}

TEST(Federation, InvalidateDropsBackendFromFleetView) {
  MetricsRegistry a;
  a.counter("qulrb_x_total", "X").inc(3);
  Federation federation(2);
  ASSERT_TRUE(feed(federation, 0, "127.0.0.1:7471", obs_doc(a), 10.0));
  EXPECT_EQ(federation.reporting(), 1u);

  federation.invalidate(0);
  EXPECT_EQ(federation.reporting(), 0u);
  const std::string text = federation.fleet_prometheus();
  // A dead backend's counters must not keep counting in the fleet view.
  EXPECT_EQ(text.find("qulrb_fleet_x_total"), std::string::npos) << text;
  EXPECT_NE(text.find("qulrb_fleet_backends_reporting 0"), std::string::npos);
}

TEST(Federation, FleetJsonReportsFreshnessPerBackend) {
  MetricsRegistry a;
  a.counter("qulrb_x_total", "X").inc(1);
  Federation federation(2);
  ASSERT_TRUE(feed(federation, 0, "127.0.0.1:7471", obs_doc(a), 100.0));

  io::JsonWriter w;
  federation.write_fleet_json(w, 350.0);
  const io::JsonValue doc = io::JsonValue::parse(w.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 2u);
  const io::JsonValue& live = doc.as_array()[0];
  EXPECT_TRUE(live.find("reporting") != nullptr);
  EXPECT_DOUBLE_EQ(live.number_or("age_ms", -1.0), 250.0);
  ASSERT_NE(live.find("obs"), nullptr);
  EXPECT_TRUE(live.find("obs")->is_object());
  const io::JsonValue& dead = doc.as_array()[1];
  ASSERT_NE(dead.find("obs"), nullptr);
  EXPECT_TRUE(dead.find("obs")->is_null());
}

TEST(Federation, FleetNameRewriting) {
  EXPECT_EQ(Federation::fleet_name("qulrb_service_requests_total"),
            "qulrb_fleet_service_requests_total");
  EXPECT_EQ(Federation::fleet_name("qulrb_x"), "qulrb_fleet_x");
  EXPECT_EQ(Federation::fleet_name("other_metric"),
            "qulrb_fleet_other_metric");
}

}  // namespace
}  // namespace qulrb::router
