#include <gtest/gtest.h>

#include "io/json_value.hpp"
#include "lrp/plan.hpp"
#include "service/protocol.hpp"
#include "util/error.hpp"

namespace qulrb::service {
namespace {

using io::JsonValue;

// -------------------------------------------------------------- parse -----

TEST(Protocol, ParsesFullSolveRequest) {
  const ProtocolRequest r = parse_request_line(
      R"({"op":"solve","id":7,"loads":[10,2,2,2],"counts":[8,8,8,8],)"
      R"("variant":"qcqm2","k":4,"priority":2,"deadline_ms":50,)"
      R"("sweeps":400,"restarts":2,"seed":9,"time_limit_ms":25,"plan":true})");
  EXPECT_EQ(r.op, OpKind::kSolve);
  EXPECT_EQ(r.client_id, 7u);
  EXPECT_EQ(r.request.task_loads, (std::vector<double>{10, 2, 2, 2}));
  EXPECT_EQ(r.request.task_counts, (std::vector<std::int64_t>{8, 8, 8, 8}));
  EXPECT_EQ(r.request.variant, lrp::CqmVariant::kFull);
  EXPECT_EQ(r.request.k, 4);
  EXPECT_EQ(r.request.priority, 2);
  EXPECT_DOUBLE_EQ(r.request.deadline_ms, 50.0);
  EXPECT_EQ(r.request.hybrid.sweeps, 400u);
  EXPECT_EQ(r.request.hybrid.num_restarts, 2u);
  EXPECT_EQ(r.request.hybrid.seed, 9u);
  EXPECT_DOUBLE_EQ(r.request.hybrid.time_limit_ms, 25.0);
  EXPECT_TRUE(r.include_plan);
}

TEST(Protocol, SolveIsTheDefaultOpWithDefaults) {
  const ProtocolRequest r =
      parse_request_line(R"({"loads":[3,1],"counts":[4,4]})");
  EXPECT_EQ(r.op, OpKind::kSolve);
  EXPECT_EQ(r.client_id, 0u);
  EXPECT_EQ(r.request.variant, lrp::CqmVariant::kReduced);
  EXPECT_EQ(r.request.priority, 0);
  EXPECT_DOUBLE_EQ(r.request.deadline_ms, 0.0);
  EXPECT_FALSE(r.include_plan);
}

TEST(Protocol, ParsesControlOps) {
  EXPECT_EQ(parse_request_line(R"({"op":"cancel","id":3})").op, OpKind::kCancel);
  EXPECT_EQ(parse_request_line(R"({"op":"cancel","id":3})").client_id, 3u);
  EXPECT_EQ(parse_request_line(R"({"op":"stats"})").op, OpKind::kStats);
  EXPECT_EQ(parse_request_line(R"({"op":"health"})").op, OpKind::kHealth);
  EXPECT_EQ(parse_request_line(R"({"op":"shutdown"})").op, OpKind::kShutdown);
}

TEST(Protocol, ParsesObsAndFlightDumpOps) {
  EXPECT_EQ(parse_request_line(R"({"op":"obs"})").op, OpKind::kObs);

  const ProtocolRequest dump = parse_request_line(
      R"({"op":"flight_dump","id":5,"window_s":30,"rid":42})");
  EXPECT_EQ(dump.op, OpKind::kFlightDump);
  EXPECT_EQ(dump.client_id, 5u);
  EXPECT_DOUBLE_EQ(dump.window_s, 30.0);
  EXPECT_EQ(dump.flight_rid, 42u);

  // Defaults: whole ring, untagged.
  const ProtocolRequest bare = parse_request_line(R"({"op":"flight_dump"})");
  EXPECT_DOUBLE_EQ(bare.window_s, 0.0);
  EXPECT_EQ(bare.flight_rid, 0u);
}

TEST(Protocol, ObsAndFlightEncodersRoundTrip) {
  const ProtocolRequest obs_req =
      parse_request_line(encode_obs_request(9));
  EXPECT_EQ(obs_req.op, OpKind::kObs);
  EXPECT_EQ(obs_req.client_id, 9u);

  const ProtocolRequest dump_req =
      parse_request_line(encode_flight_dump_request(7, 12.5, 99));
  EXPECT_EQ(dump_req.op, OpKind::kFlightDump);
  EXPECT_EQ(dump_req.client_id, 7u);
  EXPECT_DOUBLE_EQ(dump_req.window_s, 12.5);
  EXPECT_EQ(dump_req.flight_rid, 99u);

  // Responses splice the payload document verbatim under a stable key.
  const JsonValue obs_resp = JsonValue::parse(
      encode_obs_response(9, R"({"role":"serve","registry":{}})"));
  EXPECT_EQ(obs_resp.int_or("id", -1), 9);
  ASSERT_NE(obs_resp.find("obs"), nullptr);
  EXPECT_EQ(obs_resp.find("obs")->string_or("role", ""), "serve");

  const JsonValue flight_resp = JsonValue::parse(
      encode_flight_response(7, R"({"traceEvents":[],"metadata":{}})"));
  EXPECT_EQ(flight_resp.int_or("id", -1), 7);
  ASSERT_NE(flight_resp.find("flight"), nullptr);
  ASSERT_NE(flight_resp.find("flight")->find("traceEvents"), nullptr);
}

TEST(Protocol, ParsesProfileOp) {
  const ProtocolRequest req = parse_request_line(
      R"({"op":"profile","id":3,"seconds":2.5})");
  EXPECT_EQ(req.op, OpKind::kProfile);
  EXPECT_EQ(req.client_id, 3u);
  EXPECT_DOUBLE_EQ(req.profile_seconds, 2.5);

  // Default: snapshot the whole ring.
  const ProtocolRequest bare = parse_request_line(R"({"op":"profile"})");
  EXPECT_EQ(bare.op, OpKind::kProfile);
  EXPECT_DOUBLE_EQ(bare.profile_seconds, 0.0);

  EXPECT_THROW(parse_request_line(R"({"op":"profile","seconds":-1})"),
               std::exception);
}

TEST(Protocol, ProfileEncodersRoundTrip) {
  const ProtocolRequest req =
      parse_request_line(encode_profile_request(11, 4.0));
  EXPECT_EQ(req.op, OpKind::kProfile);
  EXPECT_EQ(req.client_id, 11u);
  EXPECT_DOUBLE_EQ(req.profile_seconds, 4.0);

  const JsonValue resp = JsonValue::parse(
      encode_profile_response(11, R"({"source":"qulrb_serve","samples":7})"));
  EXPECT_EQ(resp.int_or("id", -1), 11);
  ASSERT_NE(resp.find("profile"), nullptr);
  EXPECT_EQ(resp.find("profile")->int_or("samples", 0), 7);

  // Profiling off: the response still answers the op (FIFO control-response
  // alignment through the router depends on it) with a null profile.
  const JsonValue off = JsonValue::parse(encode_profile_response(12, "null"));
  EXPECT_EQ(off.int_or("id", -1), 12);
  ASSERT_NE(off.find("profile"), nullptr);
  EXPECT_TRUE(off.find("profile")->is_null());
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request_line("not json"), util::InvalidArgument);
  EXPECT_THROW(parse_request_line("[1,2]"), util::InvalidArgument);
  EXPECT_THROW(parse_request_line(R"({"op":"fly"})"), util::InvalidArgument);
  // solve without loads/counts
  EXPECT_THROW(parse_request_line(R"({"op":"solve","id":1})"),
               util::InvalidArgument);
  EXPECT_THROW(
      parse_request_line(R"({"loads":[1,2],"counts":[4,4],"variant":"qubo"})"),
      util::InvalidArgument);
  // non-integer count
  EXPECT_THROW(parse_request_line(R"({"loads":[1,2],"counts":[4.5,4]})"),
               util::InvalidArgument);
}

// ------------------------------------------------------------- encode -----

TEST(Protocol, ResponseRoundTripsThroughJson) {
  RebalanceResponse response;
  response.outcome = RequestOutcome::kOk;
  response.feasible = true;
  response.cache_hit = true;
  response.cache_retargeted = true;
  response.metrics.imbalance_before = 1.5;
  response.metrics.imbalance_after = 0.125;
  response.metrics.total_migrated = 6;
  lrp::MigrationPlan plan(2);
  plan.set_count(0, 1, 3);
  response.plan = plan;
  response.queue_ms = 0.5;
  response.solve_ms = 2.25;
  response.total_ms = 2.75;

  const JsonValue doc = JsonValue::parse(encode_response(42, response, true));
  EXPECT_EQ(doc.int_or("id", -1), 42);
  EXPECT_EQ(doc.string_or("outcome", ""), "ok");
  EXPECT_TRUE(doc.bool_or("feasible", false));
  EXPECT_TRUE(doc.bool_or("cache_hit", false));
  EXPECT_TRUE(doc.bool_or("retargeted", false));
  EXPECT_DOUBLE_EQ(doc.number_or("imbalance_after", -1.0), 0.125);
  EXPECT_EQ(doc.int_or("migrated", -1), 6);
  EXPECT_DOUBLE_EQ(doc.number_or("solve_ms", -1.0), 2.25);
  const JsonValue* matrix = doc.find("plan");
  ASSERT_NE(matrix, nullptr);
  ASSERT_EQ(matrix->as_array().size(), 2u);
  EXPECT_EQ(matrix->as_array()[0].as_array()[1].as_int(), 3);
}

TEST(Protocol, PlanOmittedUnlessRequested) {
  RebalanceResponse response;
  response.outcome = RequestOutcome::kOk;
  response.plan = lrp::MigrationPlan(2);
  const JsonValue doc = JsonValue::parse(encode_response(1, response, false));
  EXPECT_EQ(doc.find("plan"), nullptr);
  EXPECT_NE(doc.find("feasible"), nullptr);  // summary fields still present
}

TEST(Protocol, RejectionCarriesErrorNotPlan) {
  RebalanceResponse response;
  response.outcome = RequestOutcome::kRejected;
  response.error = "queue full";
  const JsonValue doc = JsonValue::parse(encode_response(9, response, true));
  EXPECT_EQ(doc.string_or("outcome", ""), "rejected");
  EXPECT_EQ(doc.string_or("error", ""), "queue full");
  EXPECT_EQ(doc.find("plan"), nullptr);
  EXPECT_EQ(doc.find("feasible"), nullptr);
}

TEST(Protocol, StatsEncodeParses) {
  ServiceStats stats;
  stats.submitted = 10;
  stats.completed = 8;
  stats.cache.exact_hits = 5;
  stats.solve_ms.add(1.0);
  stats.solve_ms.add(3.0);
  const JsonValue doc = JsonValue::parse(encode_stats(stats));
  const JsonValue* inner = doc.find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->int_or("submitted", -1), 10);
  EXPECT_EQ(inner->int_or("completed", -1), 8);
  EXPECT_EQ(inner->find("cache")->int_or("exact_hits", -1), 5);
  EXPECT_EQ(inner->find("solve_ms")->int_or("count", -1), 2);
  EXPECT_DOUBLE_EQ(inner->find("solve_ms")->number_or("mean", -1.0), 2.0);
}

TEST(Protocol, ErrorEncodeParses) {
  const JsonValue doc = JsonValue::parse(encode_error("bad \"line\"", 3));
  EXPECT_EQ(doc.string_or("error", ""), "bad \"line\"");
  EXPECT_EQ(doc.int_or("id", -1), 3);
}

// ------------------------------------------- router extensions (wire) -----

TEST(Protocol, ParsesRouterTraceFields) {
  const ProtocolRequest r = parse_request_line(
      R"({"op":"solve","id":3,"loads":[5,1],"counts":[4,4],"k":2,)"
      R"("rid":9001,"router_ms":1.5})");
  EXPECT_EQ(r.request.trace_id, 9001u);
  EXPECT_DOUBLE_EQ(r.request.router_ms, 1.5);
}

TEST(Protocol, TraceFieldsDefaultToUnset) {
  const ProtocolRequest r =
      parse_request_line(R"({"loads":[3,1],"counts":[4,4]})");
  EXPECT_EQ(r.request.trace_id, 0u);
  EXPECT_DOUBLE_EQ(r.request.router_ms, 0.0);
}

TEST(Protocol, SolveRequestRoundTripsThroughCanonicalEncoder) {
  const std::string wire =
      R"({"op":"solve","id":7,"loads":[10,2,2,2],"counts":[8,8,8,8],)"
      R"("variant":"qcqm2","k":4,"priority":2,"deadline_ms":50,)"
      R"("sweeps":400,"restarts":2,"seed":9,"time_limit_ms":25,)"
      R"("target_rimb":1.25,"simulate":true,"sim_iterations":5,)"
      R"("rid":77,"router_ms":0.25,"plan":true})";
  const ProtocolRequest first = parse_request_line(wire);
  const std::string canonical =
      encode_solve_request(first.request, first.client_id, first.include_plan);
  const ProtocolRequest second = parse_request_line(canonical);

  EXPECT_EQ(second.client_id, first.client_id);
  EXPECT_EQ(second.include_plan, first.include_plan);
  EXPECT_EQ(second.request.task_loads, first.request.task_loads);
  EXPECT_EQ(second.request.task_counts, first.request.task_counts);
  EXPECT_EQ(second.request.variant, first.request.variant);
  EXPECT_EQ(second.request.k, first.request.k);
  EXPECT_EQ(second.request.priority, first.request.priority);
  EXPECT_DOUBLE_EQ(second.request.deadline_ms, first.request.deadline_ms);
  EXPECT_EQ(second.request.hybrid.sweeps, first.request.hybrid.sweeps);
  EXPECT_EQ(second.request.hybrid.num_restarts,
            first.request.hybrid.num_restarts);
  EXPECT_EQ(second.request.hybrid.seed, first.request.hybrid.seed);
  EXPECT_DOUBLE_EQ(second.request.hybrid.time_limit_ms,
                   first.request.hybrid.time_limit_ms);
  EXPECT_DOUBLE_EQ(second.request.target_r_imb, first.request.target_r_imb);
  EXPECT_EQ(second.request.simulate, first.request.simulate);
  EXPECT_EQ(second.request.sim_iterations, first.request.sim_iterations);
  EXPECT_EQ(second.request.trace_id, first.request.trace_id);
  EXPECT_DOUBLE_EQ(second.request.router_ms, first.request.router_ms);

  // Canonicality: the encoder is a fixed point — re-encoding the re-parsed
  // request reproduces the same bytes. This is the coalescer's equality.
  EXPECT_EQ(encode_solve_request(second.request, second.client_id,
                                 second.include_plan),
            canonical);
}

TEST(Protocol, CanonicalEncoderIsInsensitiveToClientFieldOrder) {
  const ProtocolRequest a = parse_request_line(
      R"({"op":"solve","id":1,"loads":[5,1],"counts":[4,4],"k":2,"seed":3})");
  const ProtocolRequest b = parse_request_line(
      R"({"seed":3,"k":2,"counts":[4,4],"loads":[5,1],"id":2,"op":"solve"})");
  // Same solve, different client id and key order: canonical bodies with the
  // id pinned must be byte-identical.
  EXPECT_EQ(encode_solve_request(a.request, 0, false),
            encode_solve_request(b.request, 0, false));
}

TEST(Protocol, HealthEncodeUsesTheStatsEnvelope) {
  // The probe fields ride in the same {"stats":{...}} envelope as the full
  // snapshot, so a prober parses both response shapes alike.
  const JsonValue doc = JsonValue::parse(encode_health(4, 2, 0.5));
  const JsonValue* inner = doc.find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->int_or("queue_depth", -1), 4);
  EXPECT_EQ(inner->int_or("inflight", -1), 2);
  EXPECT_DOUBLE_EQ(inner->number_or("cache_hit_rate", -1.0), 0.5);
}

TEST(Protocol, StatsExposeHealthProbeFields) {
  ServiceStats stats;
  stats.pending = 3;
  stats.running = 2;
  stats.cache_hit_rate = 0.75;
  const JsonValue doc = JsonValue::parse(encode_stats(stats));
  const JsonValue* inner = doc.find("stats");
  ASSERT_NE(inner, nullptr);
  // Top-level (not nested) so a router health probe reads them in one hop.
  EXPECT_EQ(inner->int_or("queue_depth", -1), 3);
  EXPECT_EQ(inner->int_or("inflight", -1), 2);
  EXPECT_DOUBLE_EQ(inner->number_or("cache_hit_rate", -1.0), 0.75);
}

}  // namespace
}  // namespace qulrb::service
