#include <gtest/gtest.h>
#include "util/error.hpp"

#include "anneal/cqm_anneal.hpp"
#include "anneal/tempering.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

using model::CqmModel;
using model::LinearExpr;
using model::Sense;
using model::State;
using model::VarId;

/// Random CQM with linear + quadratic + squared-group objective and mixed
/// constraints, for cross-checking incremental evaluation.
CqmModel random_cqm(util::Rng& rng, std::size_t n) {
  CqmModel m;
  for (std::size_t i = 0; i < n; ++i) m.add_variable();
  for (VarId v = 0; v < n; ++v) m.add_objective_linear(v, rng.next_normal());
  for (VarId i = 0; i < n; ++i) {
    for (VarId j = i + 1; j < n; ++j) {
      if (rng.next_bool(0.3)) m.add_objective_quadratic(i, j, rng.next_normal());
    }
  }
  for (int g = 0; g < 3; ++g) {
    LinearExpr e(rng.next_normal());
    for (VarId v = 0; v < n; ++v) {
      if (rng.next_bool(0.5)) e.add_term(v, rng.next_normal());
    }
    m.add_squared_group(std::move(e), std::abs(rng.next_normal()) + 0.1);
  }
  for (int c = 0; c < 3; ++c) {
    LinearExpr lhs;
    for (VarId v = 0; v < n; ++v) {
      if (rng.next_bool(0.5)) lhs.add_term(v, rng.next_normal());
    }
    const Sense sense = c == 0 ? Sense::LE : (c == 1 ? Sense::GE : Sense::EQ);
    m.add_constraint(std::move(lhs), sense, rng.next_normal());
  }
  return m;
}

State random_state(util::Rng& rng, std::size_t n) {
  State s(n);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  return s;
}

TEST(CqmIncrementalState, InitialValuesMatchModel) {
  util::Rng rng(5);
  const CqmModel m = random_cqm(rng, 10);
  const State s = random_state(rng, 10);
  CqmIncrementalState walk(m, s, std::vector<double>(m.num_constraints(), 2.0));
  EXPECT_NEAR(walk.objective(), m.objective_value(s), 1e-9);
  EXPECT_NEAR(walk.total_violation(), m.total_violation(s), 1e-9);
  EXPECT_EQ(walk.feasible(), m.is_feasible(s));
}

TEST(CqmIncrementalState, FlipDeltaMatchesRecompute) {
  util::Rng rng(7);
  const CqmModel m = random_cqm(rng, 10);
  State s = random_state(rng, 10);
  const std::vector<double> penalties(m.num_constraints(), 3.0);
  CqmIncrementalState walk(m, s, penalties);
  for (VarId v = 0; v < 10; ++v) {
    const auto d = walk.flip_delta_parts(v);
    State flipped = s;
    flipped[v] ^= 1u;
    const double obj_delta = m.objective_value(flipped) - m.objective_value(s);
    EXPECT_NEAR(d.objective, obj_delta, 1e-8) << "var " << v;
    double pen_before = 0.0, pen_after = 0.0;
    for (std::size_t c = 0; c < m.num_constraints(); ++c) {
      pen_before += 3.0 * m.constraint_violation(c, s);
      pen_after += 3.0 * m.constraint_violation(c, flipped);
    }
    EXPECT_NEAR(d.penalty, pen_after - pen_before, 1e-8) << "var " << v;
  }
}

TEST(CqmIncrementalState, ApplyFlipKeepsRunningValuesConsistent) {
  util::Rng rng(11);
  const CqmModel m = random_cqm(rng, 12);
  State s = random_state(rng, 12);
  CqmIncrementalState walk(m, s, std::vector<double>(m.num_constraints(), 1.5));
  // Long random walk; verify against full recomputation at the end.
  for (int step = 0; step < 500; ++step) {
    walk.apply_flip(static_cast<VarId>(rng.next_below(12)));
  }
  EXPECT_NEAR(walk.objective(), m.objective_value(walk.state()), 1e-6);
  EXPECT_NEAR(walk.total_violation(), m.total_violation(walk.state()), 1e-8);
}

TEST(CqmIncrementalState, SetPenaltiesRescalesPenaltyEnergy) {
  util::Rng rng(13);
  const CqmModel m = random_cqm(rng, 8);
  const State s = random_state(rng, 8);
  CqmIncrementalState walk(m, s, std::vector<double>(m.num_constraints(), 1.0));
  const double base = walk.penalty_energy();
  walk.set_penalties(std::vector<double>(m.num_constraints(), 2.0));
  EXPECT_NEAR(walk.penalty_energy(), 2.0 * base, 1e-9);
}

TEST(CqmIncrementalState, MismatchedSizesThrow) {
  util::Rng rng(15);
  const CqmModel m = random_cqm(rng, 4);
  EXPECT_THROW(CqmIncrementalState(m, State(3, 0),
                                   std::vector<double>(m.num_constraints(), 1.0)),
               util::InvalidArgument);
  EXPECT_THROW(CqmIncrementalState(m, State(4, 0), std::vector<double>{}),
               util::InvalidArgument);
}

TEST(PairMoves, IndexGroupsEqualCoefficients) {
  CqmModel m;
  for (int i = 0; i < 4; ++i) m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 1.0);
  lhs.add_term(1, 1.0);
  lhs.add_term(2, 2.0);
  lhs.add_term(3, 2.0);
  m.add_constraint(lhs, Sense::LE, 3.0);
  const PairMoveIndex index = PairMoveIndex::build(m);
  EXPECT_EQ(index.num_classes(), 2u);  // the 1.0 pair and the 2.0 pair
}

TEST(PairMoves, SingletonCoefficientsFormNoClass) {
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 1.0);
  lhs.add_term(1, 2.0);
  lhs.add_term(2, 4.0);
  m.add_constraint(lhs, Sense::LE, 3.0);
  EXPECT_TRUE(PairMoveIndex::build(m).empty());
}

TEST(PairMoves, AttemptPreservesConstraintActivity) {
  CqmModel m;
  for (int i = 0; i < 4; ++i) m.add_variable();
  LinearExpr lhs;
  for (VarId v = 0; v < 4; ++v) lhs.add_term(v, 1.0);
  m.add_constraint(lhs, Sense::EQ, 2.0);
  // Objective prefers x2, x3 over x0, x1.
  m.add_objective_linear(0, 1.0);
  m.add_objective_linear(1, 1.0);
  m.add_objective_linear(2, -1.0);
  m.add_objective_linear(3, -1.0);
  const PairMoveIndex index = PairMoveIndex::build(m);
  ASSERT_FALSE(index.empty());
  CqmIncrementalState walk(m, State{1, 1, 0, 0},
                           std::vector<double>(m.num_constraints(), 100.0));
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) index.attempt(walk, rng, 1e30);
  // Pair moves must keep the equality satisfied and reach the optimum.
  EXPECT_TRUE(walk.feasible());
  EXPECT_DOUBLE_EQ(walk.objective(), -2.0);
  EXPECT_EQ(walk.state(), (State{0, 0, 1, 1}));
}

TEST(CqmAnnealer, SolvesConstrainedToyToOptimum) {
  // min (x0 + x1 + x2 - 2)^2 - x2   s.t.  x0 + x1 <= 1.
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  LinearExpr g(-2.0);
  for (VarId v = 0; v < 3; ++v) g.add_term(v, 1.0);
  m.add_squared_group(std::move(g), 1.0);
  m.add_objective_linear(2, -1.0);
  LinearExpr cap;
  cap.add_term(0, 1.0);
  cap.add_term(1, 1.0);
  m.add_constraint(std::move(cap), Sense::LE, 1.0);

  util::Rng rng(21);
  CqmAnnealParams params;
  params.sweeps = 300;
  const Sample s = CqmAnnealer(params).anneal_once(
      m, std::vector<double>(m.num_constraints(), 50.0), rng);
  EXPECT_TRUE(s.feasible);
  // Optimum: x2 = 1 plus one of x0/x1 -> group hits 2 exactly, objective -1.
  EXPECT_DOUBLE_EQ(s.energy, -1.0);
}

TEST(CqmAnnealer, BestSeenIsReturnedNotFinal) {
  // With zero constraints the annealer tracks objective only; its returned
  // energy must match a fresh evaluation of its returned state.
  util::Rng rng(23);
  CqmModel m = random_cqm(rng, 8);
  CqmAnnealParams params;
  params.sweeps = 100;
  util::Rng walk_rng(5);
  const Sample s = CqmAnnealer(params).anneal_once(
      m, std::vector<double>(m.num_constraints(), 10.0), walk_rng);
  EXPECT_NEAR(s.energy, m.objective_value(s.state), 1e-7);
  EXPECT_NEAR(s.violation, m.total_violation(s.state), 1e-8);
}

TEST(CqmAnnealer, RefinementModeKeepsFeasibility) {
  // Start feasible; refinement mode must never leave the feasible region.
  CqmModel m;
  for (int i = 0; i < 6; ++i) m.add_variable();
  LinearExpr g(-3.0);
  for (VarId v = 0; v < 6; ++v) g.add_term(v, 1.0);
  m.add_squared_group(std::move(g), 1.0);
  LinearExpr cap;
  for (VarId v = 0; v < 6; ++v) cap.add_term(v, 1.0);
  m.add_constraint(std::move(cap), Sense::LE, 3.0);

  util::Rng rng(31);
  CqmAnnealParams params;
  params.sweeps = 200;
  params.refinement = true;
  const Sample s = CqmAnnealer(params).anneal_once(
      m, std::vector<double>(m.num_constraints(), 100.0), rng, State(6, 0));
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.energy, 0.0);  // reaches exactly 3 bits set
}

TEST(ParallelTempering, FindsToyOptimum) {
  CqmModel m;
  for (int i = 0; i < 4; ++i) m.add_variable();
  LinearExpr g(-2.0);
  for (VarId v = 0; v < 4; ++v) g.add_term(v, 1.0);
  m.add_squared_group(std::move(g), 1.0);
  TemperingParams params;
  params.num_replicas = 4;
  params.sweeps = 100;
  params.seed = 9;
  const Sample s = ParallelTempering(params).run(
      m, std::vector<double>(m.num_constraints(), 1.0));
  EXPECT_DOUBLE_EQ(s.energy, 0.0);
  EXPECT_TRUE(s.feasible);
}

TEST(ParallelTempering, RequiresTwoReplicas) {
  CqmModel m;
  m.add_variable();
  TemperingParams params;
  params.num_replicas = 1;
  EXPECT_THROW(ParallelTempering(params).run(m, std::vector<double>{}), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb::anneal
