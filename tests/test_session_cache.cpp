#include <gtest/gtest.h>

#include <vector>

#include "lrp/cqm_builder.hpp"
#include "lrp/problem.hpp"
#include "model/cqm.hpp"
#include "service/session_cache.hpp"
#include "util/rng.hpp"

namespace qulrb::service {
namespace {

using lrp::CqmVariant;
using lrp::LrpCqm;
using lrp::LrpProblem;

LrpProblem problem_a() { return LrpProblem::uniform({9.0, 2.0, 2.0, 2.0}, 8); }
LrpProblem problem_b() { return LrpProblem::uniform({3.0, 7.0, 1.0, 4.0}, 8); }

model::State random_state(std::size_t n, util::Rng& rng) {
  model::State state(n);
  for (auto& bit : state) bit = rng.next_bool(0.5) ? 1 : 0;
  return state;
}

// ----------------------------------------------------------- retarget -----

// The heart of the cache: a retargeted model must be indistinguishable from
// a freshly built one — same objective and same violations on any state.
TEST(Retarget, MatchesFreshBuildOnRandomStates) {
  for (const CqmVariant variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    LrpCqm cached(problem_a(), variant, 6);
    ASSERT_TRUE(cached.retarget(problem_b()));
    const LrpCqm fresh(problem_b(), variant, 6);
    ASSERT_EQ(cached.cqm().num_variables(), fresh.cqm().num_variables());
    ASSERT_EQ(cached.cqm().num_constraints(), fresh.cqm().num_constraints());

    util::Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
      const model::State state = random_state(fresh.cqm().num_variables(), rng);
      EXPECT_NEAR(cached.cqm().objective_value(state),
                  fresh.cqm().objective_value(state), 1e-9);
      EXPECT_NEAR(cached.cqm().total_violation(state),
                  fresh.cqm().total_violation(state), 1e-9);
    }
  }
}

TEST(Retarget, RoundTripRestoresOriginal) {
  LrpCqm cached(problem_a(), CqmVariant::kReduced, 6);
  ASSERT_TRUE(cached.retarget(problem_b()));
  ASSERT_TRUE(cached.retarget(problem_a()));
  const LrpCqm fresh(problem_a(), CqmVariant::kReduced, 6);
  util::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const model::State state = random_state(fresh.cqm().num_variables(), rng);
    EXPECT_NEAR(cached.cqm().objective_value(state),
                fresh.cqm().objective_value(state), 1e-9);
    EXPECT_NEAR(cached.cqm().total_violation(state),
                fresh.cqm().total_violation(state), 1e-9);
  }
}

TEST(Retarget, RejectsDifferentTopology) {
  LrpCqm cached(problem_a(), CqmVariant::kReduced, 6);
  // Different task counts -> different variables.
  EXPECT_FALSE(cached.retarget(LrpProblem::uniform({9.0, 2.0, 2.0, 2.0}, 16)));
  // Different process count.
  EXPECT_FALSE(cached.retarget(LrpProblem::uniform({9.0, 2.0, 2.0}, 8)));
  // Different zero-load pattern -> different sparsity.
  EXPECT_FALSE(cached.retarget(LrpProblem::uniform({9.0, 0.0, 2.0, 2.0}, 8)));
  // The model must still be usable as problem_a afterwards.
  const LrpCqm fresh(problem_a(), CqmVariant::kReduced, 6);
  util::Rng rng(3);
  const model::State state = random_state(fresh.cqm().num_variables(), rng);
  EXPECT_NEAR(cached.cqm().objective_value(state),
              fresh.cqm().objective_value(state), 1e-9);
}

// -------------------------------------------------------------- cache -----

TEST(SessionCache, HitKindsProgressMissExactRetarget) {
  SessionCache cache(4);
  const lrp::CqmBuildOptions options;

  auto first = cache.checkout(problem_a(), CqmVariant::kReduced, 6, options);
  EXPECT_EQ(first.hit, CacheHit::kMiss);
  cache.give_back(std::move(first));
  EXPECT_EQ(cache.size(), 1u);

  auto second = cache.checkout(problem_a(), CqmVariant::kReduced, 6, options);
  EXPECT_EQ(second.hit, CacheHit::kExact);
  cache.give_back(std::move(second));

  auto third = cache.checkout(problem_b(), CqmVariant::kReduced, 6, options);
  EXPECT_EQ(third.hit, CacheHit::kRetarget);
  cache.give_back(std::move(third));

  // Different k is a different model -> separate key, cold build.
  auto fourth = cache.checkout(problem_a(), CqmVariant::kReduced, 3, options);
  EXPECT_EQ(fourth.hit, CacheHit::kMiss);
  cache.give_back(std::move(fourth));

  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.retarget_hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SessionCache, WarmHintSurvivesRoundTrip) {
  SessionCache cache(2);
  const lrp::CqmBuildOptions options;
  auto checkout = cache.checkout(problem_a(), CqmVariant::kReduced, 6, options);
  const std::size_t n = checkout.session->model.cqm().num_variables();
  checkout.session->warm_hint = model::State(n, 1);
  cache.give_back(std::move(checkout));

  auto again = cache.checkout(problem_a(), CqmVariant::kReduced, 6, options);
  EXPECT_EQ(again.hit, CacheHit::kExact);
  EXPECT_EQ(again.session->warm_hint, model::State(n, 1));
}

TEST(SessionCache, LruEvictsOldest) {
  SessionCache cache(2);
  const lrp::CqmBuildOptions options;
  const LrpProblem p = problem_a();
  cache.give_back(cache.checkout(p, CqmVariant::kReduced, 2, options));
  cache.give_back(cache.checkout(p, CqmVariant::kReduced, 3, options));
  // Touch k=2 so k=3 is the LRU entry.
  cache.give_back(cache.checkout(p, CqmVariant::kReduced, 2, options));
  // A third key evicts k=3.
  cache.give_back(cache.checkout(p, CqmVariant::kReduced, 4, options));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.checkout(p, CqmVariant::kReduced, 2, options).hit,
            CacheHit::kExact);
  EXPECT_EQ(cache.checkout(p, CqmVariant::kReduced, 3, options).hit,
            CacheHit::kMiss);
}

TEST(SessionCache, ConcurrentCheckoutsOfSameKeyAreIndependent) {
  SessionCache cache(2);
  const lrp::CqmBuildOptions options;
  auto a = cache.checkout(problem_a(), CqmVariant::kReduced, 6, options);
  auto b = cache.checkout(problem_a(), CqmVariant::kReduced, 6, options);
  EXPECT_EQ(a.hit, CacheHit::kMiss);
  EXPECT_EQ(b.hit, CacheHit::kMiss);  // slot was checked out; builds its own
  ASSERT_NE(a.session.get(), b.session.get());
  cache.give_back(std::move(a));
  cache.give_back(std::move(b));  // latest return wins the slot
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace qulrb::service
