#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qulrb::util {
namespace {

// ---------------------------------------------------------------- rng ------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsRoughlyHalf) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextInDegenerateRange) {
  Rng rng(19);
  EXPECT_EQ(rng.next_in(4, 4), 4);
  EXPECT_EQ(rng.next_in(4, 2), 4);  // inverted range collapses to lo
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.next_normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// -------------------------------------------------------------- stats ------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean_before);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_EQ(median({}), 0.0);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 10.0);
}

// --------------------------------------------------------------- math ------

TEST(Math, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
  EXPECT_EQ(ilog2_floor(std::uint64_t{1} << 63), 63);
}

TEST(Math, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
}

TEST(Math, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(Math, KahanSumBeatsNaive) {
  // 1 + many tiny values that a naive float sum would lose less precisely.
  std::vector<double> xs(1000001, 1e-16);
  xs[0] = 1.0;
  const double sum = kahan_sum(xs);
  EXPECT_NEAR(sum, 1.0 + 1e-10, 1e-15);
}

// -------------------------------------------------------------- error ------

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), InvalidArgument);
}

TEST(Error, EnsureThrowsInternalError) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(ensure(false, "bug"), InternalError);
}

// -------------------------------------------------------------- table ------

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), InvalidArgument); }

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, RendersAllCells) {
  Table t({"Algorithm", "Value"});
  t.add_row({"Greedy", "1.5"});
  t.add_row({"KK", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Greedy"), std::string::npos);
  EXPECT_NE(text.find("2.25"), std::string::npos);
  EXPECT_NE(text.find("Algorithm"), std::string::npos);
}

TEST(Table, MarkdownFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_EQ(os.str(), "| x | y |\n|---|---|\n| 1 | 2 |\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 4), "1.0000");
  EXPECT_EQ(Table::integer(-42), "-42");
}

// -------------------------------------------------------- thread pool ------

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

// -------------------------------------------------------------- timer ------

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.elapsed_ms(), 15.0);
  EXPECT_LT(timer.elapsed_ms(), 5000.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.elapsed_ms(), 15.0);
}

TEST(WallTimer, UnitsAreConsistent) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = timer.elapsed_seconds();
  const double ms = timer.elapsed_ms();
  EXPECT_NEAR(ms / s, 1000.0, 100.0);
}

}  // namespace
}  // namespace qulrb::util
