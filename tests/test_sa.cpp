#include <gtest/gtest.h>
#include "util/error.hpp"

#include <limits>

#include "anneal/sa.hpp"
#include "anneal/schedule.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

using model::QuboModel;
using model::State;
using model::VarId;

State make_state(std::size_t n, unsigned bits) {
  State s(n);
  for (std::size_t i = 0; i < n; ++i) s[i] = (bits >> i) & 1u;
  return s;
}

double brute_min(const QuboModel& q) {
  double best = std::numeric_limits<double>::infinity();
  for (unsigned bits = 0; bits < (1u << q.num_variables()); ++bits) {
    best = std::min(best, q.energy(make_state(q.num_variables(), bits)));
  }
  return best;
}

// ----------------------------------------------------------- schedule ------

TEST(BetaSchedule, MonotoneGeometric) {
  BetaSchedule s(0.1, 10.0, 100);
  double prev = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    const double b = s.at(i);
    EXPECT_GT(b, prev);
    prev = b;
  }
  EXPECT_NEAR(s.at(0), 0.1, 1e-12);
  EXPECT_NEAR(s.at(99), 10.0, 1e-9);
}

TEST(BetaSchedule, LinearEndpoints) {
  BetaSchedule s(1.0, 5.0, 5, ScheduleKind::kLinear);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(4), 5.0);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
}

TEST(BetaSchedule, SingleSweepIsCold) {
  BetaSchedule s(1.0, 9.0, 1);
  EXPECT_DOUBLE_EQ(s.at(0), 9.0);
}

TEST(BetaSchedule, ClampsBeyondEnd) {
  BetaSchedule s(1.0, 2.0, 10);
  EXPECT_DOUBLE_EQ(s.at(500), 2.0);
}

TEST(BetaSchedule, RejectsInvalidRanges) {
  EXPECT_THROW(BetaSchedule(0.0, 1.0, 10), util::InvalidArgument);
  EXPECT_THROW(BetaSchedule(2.0, 1.0, 10), util::InvalidArgument);
  EXPECT_THROW(BetaSchedule(1.0, 2.0, 0), util::InvalidArgument);
}

TEST(BetaSchedule, ForEnergyScaleOrdersEndpoints) {
  const auto s = BetaSchedule::for_energy_scale(0.01, 100.0, 50);
  EXPECT_LT(s.beta_hot(), s.beta_cold());
  EXPECT_GT(s.beta_hot(), 0.0);
}

// ----------------------------------------------------------------- sa ------

TEST(SimulatedAnnealer, FindsTrivialMinimum) {
  QuboModel q(4);
  for (VarId v = 0; v < 4; ++v) q.add_linear(v, 1.0);  // all-zero optimal
  SaParams params;
  params.sweeps = 200;
  params.num_reads = 4;
  const auto set = SimulatedAnnealer(params).sample(q);
  const auto best = set.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->energy, 0.0);
}

TEST(SimulatedAnnealer, SolvesSmallFrustratedQubo) {
  util::Rng rng(17);
  QuboModel q(10);
  for (VarId i = 0; i < 10; ++i) q.add_linear(i, rng.next_normal());
  for (VarId i = 0; i < 10; ++i) {
    for (VarId j = i + 1; j < 10; ++j) {
      if (rng.next_bool(0.5)) q.add_quadratic(i, j, rng.next_normal());
    }
  }
  SaParams params;
  params.sweeps = 500;
  params.num_reads = 8;
  params.seed = 5;
  const auto best = SimulatedAnnealer(params).sample(q).best();
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->energy, brute_min(q), 1e-9);
}

TEST(SimulatedAnnealer, EnergyMatchesReportedState) {
  QuboModel q(6);
  q.add_linear(0, -2.0);
  q.add_quadratic(0, 1, 1.0);
  SaParams params;
  params.sweeps = 100;
  const auto set = SimulatedAnnealer(params).sample(q);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_NEAR(q.energy(set.at(i).state), set.at(i).energy, 1e-9);
  }
}

TEST(SimulatedAnnealer, DeterministicForSeed) {
  QuboModel q(8);
  util::Rng rng(3);
  for (VarId i = 0; i < 8; ++i) q.add_linear(i, rng.next_normal());
  SaParams params;
  params.sweeps = 50;
  params.seed = 99;
  const auto a = SimulatedAnnealer(params).sample(q).best();
  const auto b = SimulatedAnnealer(params).sample(q).best();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->state, b->state);
  EXPECT_EQ(a->energy, b->energy);
}

TEST(SimulatedAnnealer, RespectsInitialState) {
  QuboModel q(4);  // flat landscape: nothing to move for
  util::Rng rng(1);
  const State init{1, 0, 1, 0};
  SaParams p5;
  p5.sweeps = 5;
  const Sample s = SimulatedAnnealer(p5).anneal_once(q, rng, init);
  EXPECT_DOUBLE_EQ(s.energy, 0.0);
}

TEST(SimulatedAnnealer, NumReadsProducesThatManySamples) {
  QuboModel q(3);
  SaParams params;
  params.num_reads = 7;
  params.sweeps = 10;
  EXPECT_EQ(SimulatedAnnealer(params).sample(q).size(), 7u);
}

TEST(SimulatedAnnealer, ZeroVariableModel) {
  QuboModel q(0);
  q.add_offset(4.0);
  SaParams p5;
  p5.sweeps = 5;
  const auto best = SimulatedAnnealer(p5).sample(q).best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->energy, 4.0);
}

// ----------------------------------------------------------- sampleset -----

TEST(SampleSet, BestPrefersFeasibleOverLowEnergy) {
  SampleSet set;
  set.add({State{}, -100.0, 5.0, false});
  set.add({State{}, 3.0, 0.0, true});
  const auto best = set.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->feasible);
  EXPECT_DOUBLE_EQ(best->energy, 3.0);
}

TEST(SampleSet, BestFeasibleNulloptWhenNone) {
  SampleSet set;
  set.add({State{}, 1.0, 2.0, false});
  EXPECT_FALSE(set.best_feasible().has_value());
  EXPECT_TRUE(set.best().has_value());
}

TEST(SampleSet, MergeCombines) {
  SampleSet a, b;
  a.add({State{}, 1.0, 0.0, true});
  b.add({State{}, -1.0, 0.0, true});
  a.merge(std::move(b));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.best()->energy, -1.0);
  EXPECT_EQ(a.num_feasible(), 2u);
}

TEST(SampleSet, TieBreakOnViolation) {
  Sample lower_violation{State{}, 10.0, 1.0, false};
  Sample higher_violation{State{}, -10.0, 2.0, false};
  EXPECT_TRUE(lower_violation.better_than(higher_violation));
}

}  // namespace
}  // namespace qulrb::anneal
