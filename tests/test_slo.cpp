#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "io/json_value.hpp"
#include "obs/slo.hpp"

namespace qulrb::obs {
namespace {

// Every test drives the engine's explicit clock, so window rotation and
// cooldowns are exact — no sleeps, no wall-clock flakiness.

SloEngine::Params test_params() {
  SloEngine::Params p;
  p.latency_slo_ms = 50.0;
  p.target = 0.9;  // error budget = 10% => burn = bad_fraction * 10
  p.fast_window_s = 60.0;
  p.slow_window_s = 600.0;
  p.burn_threshold = 2.0;
  p.cooldown_s = 1e9;  // one trigger per (kind, class) unless a test lowers it
  p.num_classes = 4;
  p.deadline_burst = 3;
  p.queue_hwm = 10;
  return p;
}

struct Collector {
  std::vector<SloTrigger> triggers;
  SloEngine::TriggerHandler handler() {
    return [this](const SloTrigger& t) { triggers.push_back(t); };
  }
};

TEST(SloTrigger, TaxonomyHasStableWireStrings) {
  EXPECT_STREQ(to_string(TriggerKind::kSloBurn), "slo_burn");
  EXPECT_STREQ(to_string(TriggerKind::kDeadlineMissBurst),
               "deadline_miss_burst");
  EXPECT_STREQ(to_string(TriggerKind::kBackendMarkDown), "backend_mark_down");
  EXPECT_STREQ(to_string(TriggerKind::kQueueDepthHwm), "queue_depth_hwm");

  SloTrigger t;
  t.kind = TriggerKind::kDeadlineMissBurst;
  t.rid = 42;
  t.detail = "unit";
  const io::JsonValue doc = io::JsonValue::parse(to_json(t));
  EXPECT_EQ(doc.string_or("kind", ""), "deadline_miss_burst");
  EXPECT_EQ(doc.int_or("rid", -1), 42);
  EXPECT_EQ(doc.string_or("detail", ""), "unit");
}

TEST(SloEngine, BurnRateIsBadFractionOverErrorBudget) {
  SloEngine engine(test_params());
  const double now = 1e6;
  // 10 requests, 5 good (fast + ok), 5 bad: bad fraction 0.5, budget 0.1.
  for (int i = 0; i < 5; ++i) engine.record(0, 1.0, true, false, 1, now);
  for (int i = 0; i < 5; ++i) engine.record(0, 500.0, true, false, 2, now);
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 60.0, now), 5.0);
  // An empty window burns nothing; other classes are independent.
  EXPECT_DOUBLE_EQ(engine.burn_rate(1, 60.0, now), 0.0);
}

TEST(SloEngine, FailedRequestsAreNeverGood) {
  SloEngine engine(test_params());
  const double now = 1e6;
  // Fast but failed: latency meets the objective, ok=false must still burn.
  for (int i = 0; i < 10; ++i) engine.record(0, 1.0, false, false, 1, now);
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 60.0, now), 10.0);
}

TEST(SloEngine, PagesOnlyWhenBothWindowsBurn) {
  Collector collector;
  SloEngine engine(test_params(), collector.handler());
  const double t_good = 1e6;
  // 200 good requests fill the slow window's history.
  for (int i = 0; i < 200; ++i) engine.record(0, 1.0, true, false, 1, t_good);

  // 100 s later a failure burst starts: the fast window sees only failures
  // (burn 10x) but the slow window is still diluted by the good history —
  // the multi-window guard must hold the page until BOTH breach.
  const double t_bad = t_good + 100e3;
  for (int i = 0; i < 49; ++i) {
    engine.record(0, 500.0, true, false, 1000 + static_cast<std::uint64_t>(i),
                  t_bad);
  }
  EXPECT_GE(engine.burn_rate(0, 60.0, t_bad), 2.0);
  EXPECT_LT(engine.burn_rate(0, 600.0, t_bad), 2.0);
  EXPECT_TRUE(collector.triggers.empty());

  // The 50th failure tips the slow window to exactly 2.0x — page now.
  engine.record(0, 500.0, true, false, 1049, t_bad);
  ASSERT_EQ(collector.triggers.size(), 1u);
  const SloTrigger& trigger = collector.triggers[0];
  EXPECT_EQ(trigger.kind, TriggerKind::kSloBurn);
  EXPECT_EQ(trigger.priority, 0);
  EXPECT_EQ(trigger.rid, 1049u);  // tagged with the tripping request
  EXPECT_GE(trigger.fast_burn, 2.0);
  EXPECT_GE(trigger.slow_burn, 2.0);
  EXPECT_NE(trigger.detail.find("class 0"), std::string::npos);
}

TEST(SloEngine, CooldownSpacesRepeatedTriggers) {
  SloEngine::Params params = test_params();
  params.cooldown_s = 30.0;
  Collector collector;
  SloEngine engine(params, collector.handler());
  const double t0 = 1e6;
  engine.record(0, 500.0, true, false, 1, t0);  // burn 10x/10x: page
  ASSERT_EQ(collector.triggers.size(), 1u);
  // Still burning 1 s later: suppressed by the cooldown.
  engine.record(0, 500.0, true, false, 2, t0 + 1e3);
  EXPECT_EQ(collector.triggers.size(), 1u);
  // Past the cooldown: page again.
  engine.record(0, 500.0, true, false, 3, t0 + 31e3);
  ASSERT_EQ(collector.triggers.size(), 2u);
  EXPECT_EQ(collector.triggers[1].rid, 3u);
}

TEST(SloEngine, CooldownIsPerClass) {
  SloEngine::Params params = test_params();
  Collector collector;
  SloEngine engine(params, collector.handler());
  const double t0 = 1e6;
  engine.record(0, 500.0, true, false, 1, t0);
  engine.record(2, 500.0, true, false, 2, t0);  // other class, own cooldown
  ASSERT_EQ(collector.triggers.size(), 2u);
  EXPECT_EQ(collector.triggers[0].priority, 0);
  EXPECT_EQ(collector.triggers[1].priority, 2);
}

TEST(SloEngine, DeadlineMissBurstTrigger) {
  Collector collector;
  SloEngine engine(test_params(), collector.handler());
  const double now = 1e6;
  // Latency-good requests that still missed their deadlines: the burst
  // trigger must fire independently of the latency objective.
  engine.record(0, 1.0, true, true, 1, now);
  engine.record(0, 1.0, true, true, 2, now);
  EXPECT_TRUE(collector.triggers.empty());  // burst threshold is 3
  engine.record(0, 1.0, true, true, 3, now);
  ASSERT_EQ(collector.triggers.size(), 1u);
  EXPECT_EQ(collector.triggers[0].kind, TriggerKind::kDeadlineMissBurst);
  EXPECT_EQ(collector.triggers[0].rid, 3u);
  EXPECT_NE(collector.triggers[0].detail.find("3 deadline misses"),
            std::string::npos);
}

TEST(SloEngine, QueueDepthHighWatermarkTrigger) {
  Collector collector;
  SloEngine engine(test_params(), collector.handler());
  engine.note_queue_depth(10, 1, 1e6);  // at the watermark: no trigger
  EXPECT_TRUE(collector.triggers.empty());
  engine.note_queue_depth(11, 2, 1e6);
  ASSERT_EQ(collector.triggers.size(), 1u);
  EXPECT_EQ(collector.triggers[0].kind, TriggerKind::kQueueDepthHwm);

  // hwm = 0 disables the source entirely.
  SloEngine::Params off = test_params();
  off.queue_hwm = 0;
  Collector none;
  SloEngine disabled(off, none.handler());
  disabled.note_queue_depth(1000000, 1, 1e6);
  EXPECT_TRUE(none.triggers.empty());
}

TEST(SloEngine, BackendMarkDownTrigger) {
  Collector collector;
  SloEngine engine(test_params(), collector.handler());
  engine.note_backend_down("127.0.0.1:7471", 1e6);
  ASSERT_EQ(collector.triggers.size(), 1u);
  EXPECT_EQ(collector.triggers[0].kind, TriggerKind::kBackendMarkDown);
  EXPECT_EQ(collector.triggers[0].priority, -1);  // not class-scoped
  EXPECT_NE(collector.triggers[0].detail.find("127.0.0.1:7471"),
            std::string::npos);
}

TEST(SloEngine, WindowsForgetExpiredBuckets) {
  SloEngine engine(test_params());
  const double t0 = 1e6;
  for (int i = 0; i < 10; ++i) engine.record(0, 500.0, true, false, 1, t0);
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 600.0, t0), 10.0);
  // Past the slow window, both burns read an empty window.
  const double later = t0 + 700e3;
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 60.0, later), 0.0);
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 600.0, later), 0.0);
  // New traffic in a reused ring slot counts only itself.
  for (int i = 0; i < 4; ++i) engine.record(0, 1.0, true, false, 2, later);
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 600.0, later), 0.0);
  for (int i = 0; i < 4; ++i) engine.record(0, 500.0, true, false, 3, later);
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 600.0, later), 5.0);
}

TEST(SloEngine, MergedWindowSumsLiveBucketsExactly) {
  SloEngine engine(test_params());
  const double t0 = 1e6;
  // Two separate time buckets (fast window 60 s => 15 s buckets).
  for (int i = 0; i < 5; ++i) engine.record(0, 10.0, true, false, 1, t0);
  const double t1 = t0 + 30e3;
  for (int i = 0; i < 7; ++i) engine.record(0, 20.0, true, false, 2, t1);

  LogHistogram both;
  engine.merged_window(0, 60.0, t1, both);
  EXPECT_EQ(both.count(), 12u);
  EXPECT_DOUBLE_EQ(both.sum(), 5 * 10.0 + 7 * 20.0);

  // A narrower window that starts after t0's bucket sees only the second.
  LogHistogram recent;
  engine.merged_window(0, 20.0, t1, recent);
  EXPECT_EQ(recent.count(), 7u);
  EXPECT_DOUBLE_EQ(recent.sum(), 7 * 20.0);

  // Other classes contribute nothing.
  LogHistogram other;
  engine.merged_window(3, 60.0, t1, other);
  EXPECT_EQ(other.count(), 0u);
}

TEST(SloEngine, ClampsOutOfRangePriorities) {
  SloEngine engine(test_params());
  const double now = 1e6;
  engine.record(-5, 500.0, true, false, 1, now);   // -> class 0
  engine.record(99, 500.0, true, false, 2, now);   // -> last class
  EXPECT_DOUBLE_EQ(engine.burn_rate(0, 60.0, now), 10.0);
  EXPECT_DOUBLE_EQ(engine.burn_rate(3, 60.0, now), 10.0);
  EXPECT_DOUBLE_EQ(engine.burn_rate(1, 60.0, now), 0.0);
}

TEST(SloEngine, JsonViewExposesPerClassState) {
  SloEngine engine(test_params());
  const double now = 1e6;
  for (int i = 0; i < 8; ++i) engine.record(1, 10.0, true, false, 1, now);
  for (int i = 0; i < 2; ++i) engine.record(1, 500.0, true, false, 2, now);

  const io::JsonValue doc = io::JsonValue::parse(engine.to_json(now));
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.number_or("latency_slo_ms", 0.0), 50.0);
  const io::JsonValue* classes = doc.find("classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_EQ(classes->as_array().size(), 4u);
  const io::JsonValue& cls1 = classes->as_array()[1];
  EXPECT_EQ(cls1.int_or("fast_total", -1), 10);
  EXPECT_EQ(cls1.int_or("fast_good", -1), 8);
  EXPECT_DOUBLE_EQ(cls1.number_or("fast_burn", 0.0), 2.0);
  EXPECT_GT(cls1.number_or("fast_p99_ms", 0.0), 10.0);
}

}  // namespace
}  // namespace qulrb::obs
