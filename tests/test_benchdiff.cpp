#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/json_value.hpp"
#include "obs/benchdiff.hpp"
#include "util/error.hpp"

namespace qulrb::obs {
namespace {

using io::JsonValue;

// A document in the BENCH_kernel.json flavor (after.real_time_ns).
JsonValue kernel_doc(double a_ns, double b_ns) {
  const std::string json =
      "{\"benchmarks\":{"
      "\"BM_A\":{\"after\":{\"real_time_ns\":" + std::to_string(a_ns) + "}},"
      "\"BM_B\":{\"after\":{\"real_time_ns\":" + std::to_string(b_ns) + "}}"
      "}}";
  return JsonValue::parse(json);
}

// A document in the BENCH_service.json flavor (real_time + time_unit).
JsonValue service_doc(double a_us) {
  const std::string json =
      "{\"benchmarks\":{"
      "\"BM_S\":{\"real_time\":" + std::to_string(a_us) +
      ",\"time_unit\":\"us\"}}}";
  return JsonValue::parse(json);
}

// Raw google-benchmark console JSON (benchmarks as an array).
JsonValue raw_doc(double a_ns) {
  const std::string json =
      "{\"benchmarks\":["
      "{\"name\":\"BM_R\",\"run_type\":\"iteration\",\"real_time\":" +
      std::to_string(a_ns) + ",\"time_unit\":\"ns\"},"
      "{\"name\":\"BM_R_mean\",\"run_type\":\"aggregate\",\"real_time\":" +
      std::to_string(a_ns) + ",\"time_unit\":\"ns\"}"
      "]}";
  return JsonValue::parse(json);
}

TEST(BenchDiff, ParsesKernelFlavor) {
  const auto times = parse_bench_times(kernel_doc(100.0, 200.0));
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times.at("BM_A"), 100.0);
  EXPECT_DOUBLE_EQ(times.at("BM_B"), 200.0);
}

TEST(BenchDiff, ParsesTimeUnitFlavor) {
  const auto times = parse_bench_times(service_doc(1.5));
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times.at("BM_S"), 1500.0);  // us -> ns
}

TEST(BenchDiff, ParsesRawGoogleBenchmarkArray) {
  const auto times = parse_bench_times(raw_doc(321.0));
  // The aggregate row must be skipped, only the iteration row counts.
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times.at("BM_R"), 321.0);
}

TEST(BenchDiff, ThrowsWhenNoTimesFound) {
  EXPECT_THROW(parse_bench_times(JsonValue::parse("{\"foo\":1}")),
               util::InvalidArgument);
}

TEST(BenchDiff, IdenticalRunsDoNotRegress) {
  const JsonValue base = kernel_doc(1000.0, 2000.0);
  const BenchDiffReport report = bench_diff(base, {base});
  EXPECT_FALSE(report.has_regression());
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(report.entries[0].ratio, 1.0);
}

TEST(BenchDiff, TwoTimesSlowerRegresses) {
  const BenchDiffReport report =
      bench_diff(kernel_doc(1000.0, 2000.0), {kernel_doc(2000.0, 4000.0)});
  EXPECT_TRUE(report.has_regression());
  for (const auto& e : report.entries) {
    EXPECT_TRUE(e.regression);
    EXPECT_DOUBLE_EQ(e.ratio, 2.0);
  }
}

TEST(BenchDiff, MinOfNAbsorbsOneNoisyRun) {
  // One slow candidate run and one clean one: min-of-N keeps the clean
  // measurement, so no regression is reported.
  const BenchDiffReport report =
      bench_diff(kernel_doc(1000.0, 2000.0),
                 {kernel_doc(2000.0, 4000.0), kernel_doc(1010.0, 2010.0)});
  EXPECT_FALSE(report.has_regression());
}

TEST(BenchDiff, PerBenchmarkThresholdOverride) {
  BenchDiffOptions options;
  options.threshold_pct = 10.0;
  options.per_benchmark_pct["BM_A"] = 60.0;
  // Both 50% slower: BM_A rides its looser bar, BM_B trips the global one.
  const BenchDiffReport report = bench_diff(
      kernel_doc(1000.0, 2000.0), {kernel_doc(1500.0, 3000.0)}, options);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_FALSE(report.entries[0].regression);  // BM_A
  EXPECT_TRUE(report.entries[1].regression);   // BM_B
  EXPECT_TRUE(report.has_regression());
}

TEST(BenchDiff, NoiseFloorNeverGates) {
  BenchDiffOptions options;
  options.min_time_ns = 500.0;
  // 100 ns baseline is below the floor; even 3x slower must not gate.
  const BenchDiffReport report = bench_diff(
      kernel_doc(100.0, 2000.0), {kernel_doc(300.0, 2000.0)}, options);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_TRUE(report.entries[0].below_noise_floor);
  EXPECT_FALSE(report.entries[0].regression);
  EXPECT_FALSE(report.has_regression());
}

TEST(BenchDiff, ReportsMissingBenchmarks) {
  const JsonValue base = kernel_doc(1000.0, 2000.0);
  const JsonValue cand = JsonValue::parse(
      "{\"benchmarks\":{\"BM_A\":{\"after\":{\"real_time_ns\":1000}},"
      "\"BM_NEW\":{\"after\":{\"real_time_ns\":5}}}}");
  const BenchDiffReport report = bench_diff(base, {cand});
  ASSERT_EQ(report.missing_in_candidate.size(), 1u);
  EXPECT_EQ(report.missing_in_candidate[0], "BM_B");
  ASSERT_EQ(report.missing_in_baseline.size(), 1u);
  EXPECT_EQ(report.missing_in_baseline[0], "BM_NEW");
  // A benchmark that vanished is suspicious but not a timing regression.
  EXPECT_FALSE(report.has_regression());
}

TEST(BenchDiff, JsonReportRoundTrips) {
  const BenchDiffReport report =
      bench_diff(kernel_doc(1000.0, 2000.0), {kernel_doc(2000.0, 2100.0)});
  const JsonValue doc = JsonValue::parse(report.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("regression") != nullptr);
  const JsonValue* benchmarks = doc.find("benchmarks");
  ASSERT_NE(benchmarks, nullptr);
  EXPECT_EQ(benchmarks->as_object().size(), 2u);
  EXPECT_FALSE(report.to_text().empty());
}

}  // namespace
}  // namespace qulrb::obs
