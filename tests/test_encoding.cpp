#include <gtest/gtest.h>

#include <numeric>

#include "lrp/encoding.hpp"
#include "util/error.hpp"

namespace qulrb::lrp {
namespace {

TEST(Encoding, PaperExampleN13) {
  // The paper: to express 13, coefficients {2^0, 2^1, 2^2, 6}.
  const auto coeffs = coefficient_set(13);
  EXPECT_EQ(coeffs, (std::vector<std::int64_t>{1, 2, 4, 6}));
}

TEST(Encoding, SetSumsToExactlyN) {
  for (std::int64_t n = 1; n <= 300; ++n) {
    const auto coeffs = coefficient_set(n);
    const auto sum = std::accumulate(coeffs.begin(), coeffs.end(), std::int64_t{0});
    EXPECT_EQ(sum, n) << "n=" << n;
  }
}

TEST(Encoding, SizeMatchesTableOneFormula) {
  // |C| = floor(log2 n) + 1, the per-count qubit cost in Table I.
  EXPECT_EQ(coefficient_set(1).size(), 1u);
  EXPECT_EQ(coefficient_set(2).size(), 2u);
  EXPECT_EQ(coefficient_set(3).size(), 2u);
  EXPECT_EQ(coefficient_set(50).size(), 6u);    // floor(log2 50)=5
  EXPECT_EQ(coefficient_set(100).size(), 7u);
  EXPECT_EQ(coefficient_set(208).size(), 8u);
  EXPECT_EQ(coefficient_set(2048).size(), 12u);
  for (std::int64_t n = 1; n <= 300; ++n) {
    EXPECT_EQ(coefficient_set(n).size(), bits_per_count(n)) << "n=" << n;
  }
}

TEST(Encoding, EdgeCases) {
  EXPECT_EQ(coefficient_set(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(coefficient_set(2), (std::vector<std::int64_t>{1, 1}));
  EXPECT_EQ(coefficient_set(4), (std::vector<std::int64_t>{1, 2, 1}));
  EXPECT_THROW(coefficient_set(0), util::InvalidArgument);
  EXPECT_THROW(coefficient_set(-3), util::InvalidArgument);
}

class CoefficientSetCoverage : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CoefficientSetCoverage, EveryValueInRangeRepresentable) {
  const std::int64_t n = GetParam();
  const auto coeffs = coefficient_set(n);
  EXPECT_TRUE(covers_range(coeffs, n)) << "n=" << n;
}

TEST_P(CoefficientSetCoverage, EncodeDecodeRoundTrip) {
  const std::int64_t n = GetParam();
  const auto coeffs = coefficient_set(n);
  for (std::int64_t count = 0; count <= n; ++count) {
    const auto bits = encode_count(count, coeffs);
    EXPECT_EQ(decode_count(bits, coeffs), count) << "n=" << n << " count=" << count;
  }
}

TEST_P(CoefficientSetCoverage, StandardBinaryAlsoCovers) {
  const std::int64_t n = GetParam();
  const auto coeffs = standard_binary_set(n);
  EXPECT_TRUE(covers_range(coeffs, n)) << "n=" << n;
  const auto sum = std::accumulate(coeffs.begin(), coeffs.end(), std::int64_t{0});
  EXPECT_EQ(sum, n);  // clamped top coefficient: max representable is n
  for (std::int64_t count = 0; count <= n; ++count) {
    const auto bits = encode_count(count, coeffs);
    EXPECT_EQ(decode_count(bits, coeffs), count);
  }
}

INSTANTIATE_TEST_SUITE_P(SweepN, CoefficientSetCoverage,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 50, 64,
                                           100, 127, 128, 200, 208, 255, 256, 300));

TEST(Encoding, AllBitsSetMeansAllTasks) {
  // The design property the paper exploits: using every coefficient yields
  // exactly n, so "all bits on" can only mean "all n tasks placed here".
  for (std::int64_t n : {5, 50, 100, 208}) {
    const auto coeffs = coefficient_set(n);
    const std::vector<std::uint8_t> all_on(coeffs.size(), 1);
    EXPECT_EQ(decode_count(all_on, coeffs), n);
  }
}

TEST(Encoding, EncodeRejectsOutOfRange) {
  const auto coeffs = coefficient_set(10);
  EXPECT_THROW(encode_count(-1, coeffs), util::InvalidArgument);
  EXPECT_THROW(encode_count(11, coeffs), util::InvalidArgument);
}

TEST(Encoding, DecodeRejectsSizeMismatch) {
  const auto coeffs = coefficient_set(10);
  const std::vector<std::uint8_t> bits(coeffs.size() + 1, 0);
  EXPECT_THROW(decode_count(bits, coeffs), util::InvalidArgument);
}

TEST(Encoding, CoversRangeDetectsGaps) {
  // {1, 4} cannot represent 2, 3, 6, 7.
  const std::vector<std::int64_t> gapped = {1, 4};
  EXPECT_FALSE(covers_range(gapped, 5));
  const std::vector<std::int64_t> ones = {1, 1, 1};
  EXPECT_TRUE(covers_range(ones, 3));
}

TEST(Encoding, StandardBinaryUsesAtMostOneMoreBit) {
  // The ablation premise: the standard encoding never uses fewer bits than
  // the paper's set and at most one more.
  for (std::int64_t n = 1; n <= 300; ++n) {
    const auto paper = coefficient_set(n).size();
    const auto standard = standard_binary_set(n).size();
    EXPECT_GE(standard, paper) << n;
    EXPECT_LE(standard, paper + 1) << n;
  }
}

}  // namespace
}  // namespace qulrb::lrp
