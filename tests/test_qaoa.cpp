#include <gtest/gtest.h>

#include <limits>

#include "lrp/gate_solver.hpp"
#include "lrp/kselect.hpp"
#include "quantum/qaoa.hpp"
#include "util/error.hpp"
#include "util/nelder_mead.hpp"
#include "util/rng.hpp"

namespace qulrb {
namespace {

// ------------------------------------------------------- nelder-mead -------

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto result = util::nelder_mead(f, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], -2.0, 1e-3);
  EXPECT_NEAR(result.value, 0.0, 1e-6);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  util::NelderMeadParams params;
  params.max_evaluations = 5000;
  params.tolerance = 1e-12;
  const auto result = util::nelder_mead(f, {-1.2, 1.0}, params);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 2e-2);
}

TEST(NelderMead, OneDimensional) {
  const auto f = [](const std::vector<double>& x) { return std::abs(x[0] - 3.0); };
  const auto result = util::nelder_mead(f, {0.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-3);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  std::size_t calls = 0;
  const auto f = [&calls](const std::vector<double>& x) {
    ++calls;
    return x[0] * x[0];
  };
  util::NelderMeadParams params;
  params.max_evaluations = 25;
  const auto result = util::nelder_mead(f, {10.0}, params);
  EXPECT_LE(calls, 30u);  // budget plus the in-flight shrink pass
  EXPECT_EQ(result.evaluations, calls);
}

TEST(NelderMead, EmptyStartRejected) {
  EXPECT_THROW(util::nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               util::InvalidArgument);
}

// --------------------------------------------------------------- qaoa ------

model::QuboModel tiny_qubo() {
  // min -2 x0 - x1 + 3 x0 x1: optimum is x0=1, x1=0 with energy -2.
  model::QuboModel q(2);
  q.add_linear(0, -2.0);
  q.add_linear(1, -1.0);
  q.add_quadratic(0, 1, 3.0);
  return q;
}

TEST(Qaoa, SolvesTinyQubo) {
  quantum::QaoaParams params;
  params.layers = 2;
  params.seed = 3;
  const auto result = quantum::QaoaSolver(params).solve_qubo(tiny_qubo());
  EXPECT_DOUBLE_EQ(result.best.energy, -2.0);
  EXPECT_EQ(result.best.state, (model::State{1, 0}));
  EXPECT_EQ(result.gammas.size(), 2u);
  EXPECT_EQ(result.betas.size(), 2u);
  EXPECT_GT(result.circuit_evaluations, 0u);
}

TEST(Qaoa, ExpectationAtZeroAnglesIsUniformMean) {
  // gamma = beta = 0 leaves |+>^n untouched: <C> = mean energy.
  const model::QuboModel q = tiny_qubo();
  const double expectation = quantum::QaoaSolver::expectation(q, {0.0}, {0.0});
  // Energies: 0, -2, -1, 0 -> mean -0.75.
  EXPECT_NEAR(expectation, -0.75, 1e-12);
}

TEST(Qaoa, OptimizedExpectationBeatsUniform) {
  const model::QuboModel q = tiny_qubo();
  quantum::QaoaParams params;
  params.layers = 2;
  params.seed = 5;
  const auto result = quantum::QaoaSolver(params).solve_qubo(q);
  EXPECT_LT(result.expectation, -0.75);  // better than the unoptimized start
}

TEST(Qaoa, MoreLayersDoNotHurt) {
  const model::QuboModel q = tiny_qubo();
  quantum::QaoaParams one;
  one.layers = 1;
  one.seed = 9;
  quantum::QaoaParams three;
  three.layers = 3;
  three.seed = 9;
  three.optimizer_evals = 600;
  const auto r1 = quantum::QaoaSolver(one).solve_qubo(q);
  const auto r3 = quantum::QaoaSolver(three).solve_qubo(q);
  EXPECT_LE(r3.expectation, r1.expectation + 0.1);
}

TEST(Qaoa, SolvesRandomFiveVariableInstances) {
  util::Rng rng(31);
  for (int trial = 0; trial < 3; ++trial) {
    model::QuboModel q(5);
    for (model::VarId v = 0; v < 5; ++v) q.add_linear(v, rng.next_normal());
    for (model::VarId i = 0; i < 5; ++i) {
      for (model::VarId j = i + 1; j < 5; ++j) {
        if (rng.next_bool(0.5)) q.add_quadratic(i, j, rng.next_normal());
      }
    }
    double brute = std::numeric_limits<double>::infinity();
    for (unsigned bits = 0; bits < 32; ++bits) {
      model::State s(5);
      for (std::size_t b = 0; b < 5; ++b) s[b] = (bits >> b) & 1u;
      brute = std::min(brute, q.energy(s));
    }
    quantum::QaoaParams params;
    params.layers = 3;
    params.seed = static_cast<std::uint64_t>(trial) + 1;
    params.samples = 512;
    params.optimizer_evals = 600;
    const auto result = quantum::QaoaSolver(params).solve_qubo(q);
    // Sampling the optimized distribution must find the true optimum on
    // these tiny instances.
    EXPECT_NEAR(result.best.energy, brute, 1e-9) << "trial " << trial;
  }
}

TEST(Qaoa, IsingInterfaceReportsIsingEnergy) {
  model::IsingModel ising(2);
  ising.add_coupling(0, 1, 1.0);  // anti-aligned optimum, energy -1
  quantum::QaoaParams params;
  params.layers = 2;
  params.seed = 2;
  const auto result = quantum::QaoaSolver(params).solve_ising(ising);
  EXPECT_DOUBLE_EQ(result.best.energy, -1.0);
}

TEST(Qaoa, RejectsOversizedInstances) {
  model::QuboModel q(21);
  quantum::QaoaParams params;
  EXPECT_THROW(quantum::QaoaSolver(params).solve_qubo(q), util::InvalidArgument);
}

TEST(Qaoa, DeterministicForSeed) {
  const model::QuboModel q = tiny_qubo();
  quantum::QaoaParams params;
  params.seed = 77;
  const auto a = quantum::QaoaSolver(params).solve_qubo(q);
  const auto b = quantum::QaoaSolver(params).solve_qubo(q);
  EXPECT_EQ(a.best.state, b.best.state);
  EXPECT_DOUBLE_EQ(a.expectation, b.expectation);
}

// -------------------------------------------------------- gate solver ------

TEST(GateSolver, SolvesTinyLrp) {
  // M = 2, n = 4: Q_CQM1 has 2 * (floor(log2 4) + 1) = ... (M-1) pairs * 3
  // bits = 6 qubits with the reduced variant — easily simulable.
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({3.0, 1.0}, 4);
  const lrp::KSelection k = lrp::select_k(problem);
  ASSERT_GT(k.k1, 0);

  lrp::GateSolverOptions options;
  options.variant = lrp::CqmVariant::kReduced;
  options.k = k.k1;
  options.qaoa.layers = 3;
  options.qaoa.seed = 4;
  options.qaoa.samples = 1024;
  options.qaoa.optimizer_evals = 900;
  lrp::GateQaoaSolver solver(options);
  const lrp::SolverReport report = lrp::run_and_evaluate(solver, problem);
  EXPECT_LE(report.metrics.total_migrated, k.k1);
  EXPECT_LT(report.metrics.imbalance_after, problem.imbalance_ratio());
  const auto& diag = solver.last_diagnostics();
  ASSERT_TRUE(diag.has_value());
  EXPECT_LE(diag->num_qubits, 20u);
  EXPECT_GT(diag->circuit_evaluations, 0u);
}

TEST(GateSolver, UnbalancedPenaltyAddsNoAncillas) {
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({2.0, 1.0}, 4);
  lrp::GateSolverOptions options;
  options.k = 2;
  options.qaoa.layers = 1;
  options.qaoa.optimizer_evals = 50;
  lrp::GateQaoaSolver solver(options);
  (void)solver.solve(problem);
  const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, 2);
  EXPECT_EQ(solver.last_diagnostics()->num_qubits, cqm.num_binary_variables());
}

TEST(GateSolver, PlanAlwaysValid) {
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({2.5, 1.5}, 4);
  lrp::GateSolverOptions options;
  options.k = 3;
  options.qaoa.layers = 1;
  options.qaoa.optimizer_evals = 40;
  options.qaoa.samples = 16;
  lrp::GateQaoaSolver solver(options);
  const lrp::SolveOutput out = solver.solve(problem);
  EXPECT_NO_THROW(out.plan.validate(problem));
}

}  // namespace
}  // namespace qulrb
