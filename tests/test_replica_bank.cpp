#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "anneal/cqm_anneal.hpp"
#include "anneal/delta_cache.hpp"
#include "anneal/hybrid.hpp"
#include "anneal/replica_bank.hpp"
#include "anneal/sa.hpp"
#include "anneal/sampleset.hpp"
#include "anneal/simd.hpp"
#include "anneal/tempering.hpp"
#include "lrp/cqm_builder.hpp"
#include "lrp/problem.hpp"
#include "model/cqm.hpp"
#include "model/qubo.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

// Every equality in this file is bitwise: the replica bank's contract is that
// each lane reproduces the scalar walk *exactly*, so doubles are compared
// with EXPECT_EQ (IEEE equality on identical bit patterns), never near().

// RAII guard: force a SIMD dispatch level for one scope, restore on exit.
class SimdLevelGuard {
 public:
  explicit SimdLevelGuard(simd::Level level) : saved_(simd::active_level()) {
    simd::set_active_level(level);
  }
  ~SimdLevelGuard() { simd::set_active_level(saved_); }
  SimdLevelGuard(const SimdLevelGuard&) = delete;
  SimdLevelGuard& operator=(const SimdLevelGuard&) = delete;

 private:
  simd::Level saved_;
};

bool avx2_available() {
  return simd::detected_level() == simd::Level::kAvx2;
}

// Small but structurally complete LRP instance: skewed loads, unequal task
// counts, tight migration bound — exercises squared groups, inequality and
// (for kFull) equality constraints, and non-trivial pair-move classes.
lrp::LrpProblem skewed_problem() {
  return lrp::LrpProblem({30.0, 9.0, 8.0, 4.0, 3.0, 2.0},
                         {12, 12, 12, 12, 12, 12});
}

model::CqmModel build_cqm(lrp::CqmVariant variant) {
  return lrp::build_lrp_cqm(skewed_problem(), variant, 8, {}).cqm();
}

model::State random_state(std::size_t n, util::Rng& rng) {
  model::State s(n);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
  return s;
}

void expect_sample_eq(const Sample& a, const Sample& b) {
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.feasible, b.feasible);
}

void expect_rng_eq(util::Rng a, util::Rng b) {
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ------------------------------------------------ bank primitives vs scalar -

// Drive R bank lanes and R CqmIncrementalState walks through the same random
// op sequence (flip deltas, pair deltas, commits, penalty swaps) and require
// every observable to stay bitwise identical at every step.
void check_bank_matches_incremental(lrp::CqmVariant variant, simd::Level level) {
  const model::CqmModel cqm = build_cqm(variant);
  const std::size_t n = cqm.num_variables();
  const std::size_t c = cqm.num_constraints();
  constexpr std::size_t kLanes = 5;  // not a multiple of the vector width

  util::Rng setup(42);
  std::vector<model::State> starts;
  std::vector<std::vector<double>> penalties;
  for (std::size_t r = 0; r < kLanes; ++r) {
    starts.push_back(random_state(n, setup));
    penalties.emplace_back(c, 1.0 + static_cast<double>(r));
  }

  SimdLevelGuard guard(level);
  CqmReplicaBank bank(cqm, starts, penalties);
  std::vector<CqmIncrementalState> ref;
  for (std::size_t r = 0; r < kLanes; ++r) {
    ref.emplace_back(cqm, starts[r], penalties[r]);
  }

  auto check_lane = [&](std::size_t r) {
    EXPECT_EQ(bank.objective(r), ref[r].objective());
    EXPECT_EQ(bank.penalty_energy(r), ref[r].penalty_energy());
    EXPECT_EQ(bank.total_energy(r), ref[r].total_energy());
    EXPECT_EQ(bank.total_violation(r), ref[r].total_violation());
    EXPECT_EQ(bank.feasible(r), ref[r].feasible());
    EXPECT_EQ(bank.extract_state(r), ref[r].state());
  };
  for (std::size_t r = 0; r < kLanes; ++r) check_lane(r);

  util::Rng ops(7);
  for (std::size_t step = 0; step < 600; ++step) {
    const std::size_t r = ops.next_below(kLanes);
    const auto v = static_cast<model::VarId>(ops.next_below(n));
    const auto w = static_cast<model::VarId>(ops.next_below(n));

    const auto bd = bank.flip_delta_parts(r, v);
    const auto rd = ref[r].flip_delta_parts(v);
    ASSERT_EQ(bd.objective, rd.objective);
    ASSERT_EQ(bd.penalty, rd.penalty);
    if (v != w) {
      const auto bp = bank.pair_delta_parts(r, v, w);
      const auto rp = ref[r].pair_delta_parts(v, w);
      ASSERT_EQ(bp.objective, rp.objective);
      ASSERT_EQ(bp.penalty, rp.penalty);
    }
    EXPECT_EQ(bank.state_bit(r, v), ref[r].state_bit(v));

    bank.apply_flip(r, v);
    ref[r].apply_flip(v);
    if (step % 97 == 0) {
      std::vector<double> fresh(c, 1.0 + ops.next_double());
      bank.set_penalties(r, fresh);
      ref[r].set_penalties(fresh);
    }
    check_lane(r);
  }
}

TEST(ReplicaBank, LaneMatchesIncrementalStateScalar_QCQM1) {
  check_bank_matches_incremental(lrp::CqmVariant::kReduced, simd::Level::kScalar);
}

TEST(ReplicaBank, LaneMatchesIncrementalStateScalar_QCQM2) {
  check_bank_matches_incremental(lrp::CqmVariant::kFull, simd::Level::kScalar);
}

TEST(ReplicaBank, LaneMatchesIncrementalStateSimd_QCQM1) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available in this build";
  check_bank_matches_incremental(lrp::CqmVariant::kReduced, simd::Level::kAvx2);
}

TEST(ReplicaBank, LaneMatchesIncrementalStateSimd_QCQM2) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available in this build";
  check_bank_matches_incremental(lrp::CqmVariant::kFull, simd::Level::kAvx2);
}

// The batched all-lane kernels must agree entry for entry with the per-lane
// scalar calls, and a masked batched commit must match selective commits.
void check_batched_kernels(simd::Level level) {
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kFull);
  const std::size_t n = cqm.num_variables();
  constexpr std::size_t kLanes = 7;

  util::Rng setup(11);
  std::vector<model::State> starts;
  std::vector<std::vector<double>> penalties;
  for (std::size_t r = 0; r < kLanes; ++r) {
    starts.push_back(random_state(n, setup));
    penalties.emplace_back(cqm.num_constraints(), 2.0);
  }

  SimdLevelGuard guard(level);
  CqmReplicaBank bank(cqm, starts, penalties);
  CqmReplicaBank mirror(cqm, starts, penalties);

  util::Rng ops(13);
  std::vector<CqmReplicaBank::FlipDelta> out(kLanes);
  std::vector<std::uint8_t> accept(kLanes);
  for (std::size_t step = 0; step < 300; ++step) {
    const auto v = static_cast<model::VarId>(ops.next_below(n));
    auto w = static_cast<model::VarId>(ops.next_below(n));
    if (w == v) w = static_cast<model::VarId>((w + 1) % n);

    bank.batched_flip_delta(v, out.data());
    for (std::size_t r = 0; r < kLanes; ++r) {
      const auto d = mirror.flip_delta_parts(r, v);
      ASSERT_EQ(out[r].objective, d.objective);
      ASSERT_EQ(out[r].penalty, d.penalty);
    }
    bank.batched_pair_delta(v, w, out.data());
    for (std::size_t r = 0; r < kLanes; ++r) {
      if (bank.state_bit(r, v) == bank.state_bit(r, w)) continue;
      const auto d = mirror.pair_delta_parts(r, v, w);
      ASSERT_EQ(out[r].objective, d.objective);
      ASSERT_EQ(out[r].penalty, d.penalty);
    }

    for (auto& a : accept) a = static_cast<std::uint8_t>(ops.next_below(2));
    bank.batched_apply_flip(v, accept.data());
    for (std::size_t r = 0; r < kLanes; ++r) {
      if (accept[r] != 0) mirror.apply_flip(r, v);
      ASSERT_EQ(bank.objective(r), mirror.objective(r));
      ASSERT_EQ(bank.penalty_energy(r), mirror.penalty_energy(r));
      ASSERT_EQ(bank.state_bit(r, v), mirror.state_bit(r, v));
    }
  }
  for (std::size_t r = 0; r < kLanes; ++r) {
    EXPECT_EQ(bank.extract_state(r), mirror.extract_state(r));
  }
}

TEST(ReplicaBank, BatchedKernelsMatchPerLaneScalar) {
  check_batched_kernels(simd::Level::kScalar);
}

TEST(ReplicaBank, BatchedKernelsMatchPerLaneSimd) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available in this build";
  check_batched_kernels(simd::Level::kAvx2);
}

// One identical walk executed under both dispatch levels must leave the two
// banks in bitwise-identical states: the level is a pure performance knob.
TEST(ReplicaBank, SimdAndScalarWalksBitwiseIdentical) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available in this build";
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kReduced);
  const std::size_t n = cqm.num_variables();
  constexpr std::size_t kLanes = 8;

  util::Rng setup(3);
  std::vector<model::State> starts;
  std::vector<std::vector<double>> penalties;
  for (std::size_t r = 0; r < kLanes; ++r) {
    starts.push_back(random_state(n, setup));
    penalties.emplace_back(cqm.num_constraints(), 4.0);
  }

  auto run_walk = [&](simd::Level level) {
    SimdLevelGuard guard(level);
    CqmReplicaBank bank(cqm, starts, penalties);
    util::Rng ops(99);
    std::vector<std::uint8_t> accept(kLanes);
    for (std::size_t step = 0; step < 500; ++step) {
      const auto v = static_cast<model::VarId>(ops.next_below(n));
      for (auto& a : accept) a = static_cast<std::uint8_t>(ops.next_below(2));
      bank.batched_apply_flip(v, accept.data());
    }
    std::vector<std::pair<double, double>> lanes;
    std::vector<model::State> states;
    for (std::size_t r = 0; r < kLanes; ++r) {
      lanes.emplace_back(bank.objective(r), bank.penalty_energy(r));
      states.push_back(bank.extract_state(r));
    }
    return std::make_pair(lanes, states);
  };

  const auto scalar = run_walk(simd::Level::kScalar);
  const auto vec = run_walk(simd::Level::kAvx2);
  EXPECT_EQ(scalar.first, vec.first);
  EXPECT_EQ(scalar.second, vec.second);
}

// ------------------------------------------------------- QUBO replica bank --

model::QuboModel random_qubo(std::size_t n, std::uint64_t seed) {
  model::QuboModel qubo(n);
  util::Rng gen(seed);
  for (std::size_t i = 0; i < n; ++i) {
    qubo.add_linear(static_cast<model::VarId>(i), gen.next_double() * 4.0 - 2.0);
    for (int t = 0; t < 4; ++t) {
      const auto j = static_cast<model::VarId>(gen.next_below(n));
      if (j == static_cast<model::VarId>(i)) continue;
      qubo.add_quadratic(static_cast<model::VarId>(i), j,
                         gen.next_double() * 2.0 - 1.0);
    }
  }
  qubo.add_offset(0.5);
  return qubo;
}

void check_qubo_bank(simd::Level level) {
  const model::QuboModel qubo = random_qubo(90, 5);
  constexpr std::size_t kLanes = 6;
  util::Rng setup(21);
  std::vector<model::State> starts;
  for (std::size_t r = 0; r < kLanes; ++r) starts.push_back(random_state(90, setup));

  SimdLevelGuard guard(level);
  QuboReplicaBank bank(qubo, starts);
  std::vector<model::State> ref_states = starts;
  std::vector<QuboDeltaCache> ref;
  for (std::size_t r = 0; r < kLanes; ++r) ref.emplace_back(qubo, ref_states[r]);

  util::Rng ops(17);
  for (std::size_t step = 0; step < 800; ++step) {
    const std::size_t r = ops.next_below(kLanes);
    const auto v = static_cast<model::VarId>(ops.next_below(90));
    ASSERT_EQ(bank.energy(r), ref[r].energy());
    ASSERT_EQ(bank.delta(r, v), ref[r].delta(v));
    ASSERT_EQ(bank.state_bit(r, v), ref_states[r][v] != 0);
    bank.apply_flip(r, v);
    ref[r].apply_flip(ref_states[r], v);
  }
  for (std::size_t r = 0; r < kLanes; ++r) {
    EXPECT_EQ(bank.extract_state(r), ref_states[r]);
    EXPECT_EQ(bank.energy(r), ref[r].energy());
  }
}

TEST(ReplicaBank, QuboLanesMatchDeltaCacheScalar) {
  check_qubo_bank(simd::Level::kScalar);
}

TEST(ReplicaBank, QuboLanesMatchDeltaCacheSimd) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available in this build";
  check_qubo_bank(simd::Level::kAvx2);
}

// ----------------------------------------------- batched annealer contracts -

// Exact per-lane mode: anneal_lanes with per-lane proposal streams must be
// bitwise identical to R independent CqmAnnealer::anneal_once runs with the
// same pre-split streams — samples and final RNG positions both match.
void check_exact_mode(lrp::CqmVariant variant, std::size_t lanes,
                      std::uint64_t seed) {
  const model::CqmModel cqm = build_cqm(variant);
  const std::size_t n = cqm.num_variables();
  const PairMoveIndex pairs = PairMoveIndex::build(cqm);
  const std::vector<double> penalties(cqm.num_constraints(), 2.0);

  util::Rng master(seed);
  std::vector<util::Rng> streams;
  for (std::size_t r = 0; r < lanes; ++r) streams.push_back(master.split());
  std::vector<model::State> inits;
  {
    util::Rng init_rng(seed ^ 0x5bd1e995u);
    // Lane 0 refines the all-zeros point; the rest scramble random starts.
    inits.emplace_back(n, 0);
    for (std::size_t r = 1; r < lanes; ++r) inits.push_back(random_state(n, init_rng));
  }

  // Scalar oracle: one anneal_once per lane on a copy of its stream.
  std::vector<util::Rng> scalar_streams = streams;
  std::vector<Sample> expected;
  for (std::size_t r = 0; r < lanes; ++r) {
    CqmAnnealParams ap;
    ap.sweeps = 50;
    ap.refinement = (r == 0);
    expected.push_back(CqmAnnealer(ap).anneal_once(cqm, penalties,
                                                   scalar_streams[r], inits[r],
                                                   nullptr, &pairs));
  }

  std::vector<util::Rng> bank_streams = streams;
  std::vector<BatchedLaneSpec> specs(lanes);
  for (std::size_t r = 0; r < lanes; ++r) {
    specs[r].rng = &bank_streams[r];
    specs[r].initial = &inits[r];
    specs[r].penalties = &penalties;
    specs[r].refinement = (r == 0);
  }
  BatchedCqmAnnealParams bp;
  bp.sweeps = 50;
  const std::vector<Sample> got =
      BatchedCqmAnnealer(bp).anneal_lanes(cqm, specs, &pairs);

  ASSERT_EQ(got.size(), lanes);
  for (std::size_t r = 0; r < lanes; ++r) {
    SCOPED_TRACE("lane " + std::to_string(r));
    expect_sample_eq(got[r], expected[r]);
    expect_rng_eq(bank_streams[r], scalar_streams[r]);
  }
}

TEST(ReplicaBank, ExactModeMatchesScalarAnnealer_QCQM1) {
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const std::uint64_t seed : {7ull, 1234ull}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " seed=" + std::to_string(seed));
      check_exact_mode(lrp::CqmVariant::kReduced, lanes, seed);
    }
  }
}

TEST(ReplicaBank, ExactModeMatchesScalarAnnealer_QCQM2) {
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    check_exact_mode(lrp::CqmVariant::kFull, lanes, 99);
  }
}

// Shared-proposal lockstep mode, run end to end under both dispatch levels:
// per-lane samples and final stream positions must be bitwise identical.
TEST(ReplicaBank, LockstepModeSimdScalarIdentical) {
  if (!avx2_available()) GTEST_SKIP() << "AVX2 not available in this build";
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kReduced);
  const PairMoveIndex pairs = PairMoveIndex::build(cqm);
  const std::vector<double> penalties(cqm.num_constraints(), 2.0);
  constexpr std::size_t kLanes = 8;

  auto run = [&](simd::Level level) {
    SimdLevelGuard guard(level);
    util::Rng master(5);
    std::vector<util::Rng> streams;
    for (std::size_t r = 0; r < kLanes; ++r) streams.push_back(master.split());
    std::vector<BatchedLaneSpec> specs(kLanes);
    for (std::size_t r = 0; r < kLanes; ++r) {
      specs[r].rng = &streams[r];
      specs[r].penalties = &penalties;
    }
    BatchedCqmAnnealParams bp;
    bp.sweeps = 40;
    util::Rng proposal(17);
    auto samples = BatchedCqmAnnealer(bp).anneal_lanes(cqm, specs, &pairs, &proposal);
    return std::make_pair(std::move(samples), streams);
  };

  auto scalar = run(simd::Level::kScalar);
  auto vec = run(simd::Level::kAvx2);
  ASSERT_EQ(scalar.first.size(), vec.first.size());
  for (std::size_t r = 0; r < kLanes; ++r) {
    SCOPED_TRACE("lane " + std::to_string(r));
    expect_sample_eq(scalar.first[r], vec.first[r]);
    expect_rng_eq(scalar.second[r], vec.second[r]);
  }
}

// In lockstep mode a lane's trajectory depends only on (proposal stream, its
// own acceptance stream): the same lane run solo must reproduce its R = 8
// result exactly, whatever the other lanes were doing.
TEST(ReplicaBank, LockstepModeIndependentOfReplicaCount) {
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kReduced);
  const PairMoveIndex pairs = PairMoveIndex::build(cqm);
  const std::vector<double> penalties(cqm.num_constraints(), 2.0);
  constexpr std::size_t kLanes = 8;

  util::Rng master(5);
  std::vector<util::Rng> streams;
  for (std::size_t r = 0; r < kLanes; ++r) streams.push_back(master.split());

  BatchedCqmAnnealParams bp;
  bp.sweeps = 30;

  std::vector<util::Rng> full_streams = streams;
  std::vector<BatchedLaneSpec> specs(kLanes);
  for (std::size_t r = 0; r < kLanes; ++r) {
    specs[r].rng = &full_streams[r];
    specs[r].penalties = &penalties;
  }
  util::Rng proposal_full(17);
  const auto full =
      BatchedCqmAnnealer(bp).anneal_lanes(cqm, specs, &pairs, &proposal_full);

  for (const std::size_t r : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    SCOPED_TRACE("lane " + std::to_string(r));
    util::Rng solo_stream = streams[r];
    BatchedLaneSpec solo;
    solo.rng = &solo_stream;
    solo.penalties = &penalties;
    util::Rng proposal_solo(17);
    const auto got = BatchedCqmAnnealer(bp).anneal_lanes(
        cqm, std::span<const BatchedLaneSpec>(&solo, 1), &pairs, &proposal_solo);
    ASSERT_EQ(got.size(), 1u);
    expect_sample_eq(got[0], full[r]);
    expect_rng_eq(solo_stream, full_streams[r]);
  }
}

// --------------------------------------------------------- tempering swaps --

// Reference replica exchange with configuration swaps: walkers are scalar
// CqmIncrementalState instances and an exchange physically swaps the walker
// objects between ladder positions. The production ParallelTempering keeps
// configurations in bank lanes and swaps a lane permutation instead — the
// two must be indistinguishable draw for draw and bit for bit.
Sample reference_tempering(const model::CqmModel& cqm,
                           const std::vector<double>& penalties,
                           const TemperingParams& params,
                           const PairMoveIndex& pairs) {
  const std::size_t n = cqm.num_variables();
  util::Rng master(params.seed);
  std::vector<util::Rng> rngs;
  for (std::size_t r = 0; r < params.num_replicas; ++r) rngs.push_back(master.split());

  std::vector<CqmIncrementalState> walkers;
  for (std::size_t r = 0; r < params.num_replicas; ++r) {
    model::State start(n);
    for (auto& b : start) b = static_cast<std::uint8_t>(rngs[r].next_below(2));
    walkers.emplace_back(cqm, std::move(start), penalties);
  }

  double beta_hot = params.beta_hot;
  double beta_cold = params.beta_cold;
  if (beta_hot <= 0.0 || beta_cold <= 0.0) {
    double max_abs = 1e-9;
    const std::size_t probes = std::min<std::size_t>(n, 256);
    for (std::size_t p = 0; p < probes; ++p) {
      const auto v = static_cast<model::VarId>(rngs[0].next_below(n));
      max_abs = std::max(max_abs, std::abs(walkers[0].flip_delta(v)));
    }
    beta_hot = std::log(2.0) / max_abs;
    beta_cold = 1e4 / max_abs;
  }
  std::vector<double> betas(params.num_replicas);
  for (std::size_t r = 0; r < params.num_replicas; ++r) {
    const double t = static_cast<double>(r) /
                     static_cast<double>(params.num_replicas - 1);
    betas[r] = beta_hot * std::pow(beta_cold / beta_hot, t);
  }

  auto snapshot = [](const CqmIncrementalState& w) {
    return Sample{w.state(), w.objective(), w.total_violation(), w.feasible()};
  };
  Sample best = snapshot(walkers.back());

  for (std::size_t sweep = 0; sweep < params.sweeps; ++sweep) {
    for (std::size_t r = 0; r < walkers.size(); ++r) {
      auto& walk = walkers[r];
      auto& rng = rngs[r];
      const double beta = betas[r];
      for (std::size_t step = 0; step < n; ++step) {
        if (!pairs.empty() && rng.next_bool(0.5)) {
          pairs.attempt(walk, rng, beta);
          continue;
        }
        const auto v = static_cast<model::VarId>(rng.next_below(n));
        const double delta = walk.flip_delta(v);
        if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
          walk.apply_flip(v);
        }
      }
      Sample current{{}, walk.objective(), walk.total_violation(), walk.feasible()};
      if (current.better_than(best)) {
        current.state = walk.state();
        best = std::move(current);
      }
    }
    if ((sweep + 1) % params.swap_interval == 0) {
      for (std::size_t r = 0; r + 1 < walkers.size(); ++r) {
        const double ea = walkers[r].total_energy();
        const double eb = walkers[r + 1].total_energy();
        const double log_accept = (betas[r] - betas[r + 1]) * (ea - eb);
        if (log_accept >= 0.0 || rngs[0].next_double() < std::exp(log_accept)) {
          std::swap(walkers[r], walkers[r + 1]);
        }
      }
    }
  }
  return best;
}

TEST(ReplicaBank, TemperingPermutationSwapMatchesConfigurationSwap) {
  for (const auto variant : {lrp::CqmVariant::kReduced, lrp::CqmVariant::kFull}) {
    const model::CqmModel cqm = build_cqm(variant);
    const PairMoveIndex pairs = PairMoveIndex::build(cqm);
    const std::vector<double> penalties(cqm.num_constraints(), 2.0);
    TemperingParams params;
    params.num_replicas = 4;
    params.sweeps = 30;
    params.swap_interval = 5;
    params.seed = 31;
    const Sample expected = reference_tempering(cqm, penalties, params, pairs);
    const Sample got = ParallelTempering(params).run(cqm, penalties, {}, &pairs);
    SCOPED_TRACE(variant == lrp::CqmVariant::kReduced ? "Q_CQM1" : "Q_CQM2");
    expect_sample_eq(got, expected);
  }
}

TEST(ReplicaBank, TemperingDeterministicAndCountsLaneSweeps) {
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kReduced);
  const PairMoveIndex pairs = PairMoveIndex::build(cqm);
  const std::vector<double> penalties(cqm.num_constraints(), 2.0);

  obs::MetricsRegistry reg;
  TemperingParams params;
  params.num_replicas = 4;
  params.sweeps = 20;
  params.swap_interval = 5;
  params.seed = 77;
  params.sweep_counter = &reg.counter("rounds");
  params.replica_sweep_counter = &reg.counter("lane_sweeps");

  const Sample a = ParallelTempering(params).run(cqm, penalties, {}, &pairs);
  EXPECT_EQ(reg.counter("rounds").value(), 20u);
  EXPECT_EQ(reg.counter("lane_sweeps").value(), 20u * 4u);

  const Sample b = ParallelTempering(params).run(cqm, penalties, {}, &pairs);
  expect_sample_eq(a, b);
}

// ------------------------------------------------------------ SA + tabu -----

// SimulatedAnnealer::sample's bank-batched multi-read path must emit exactly
// the sample set the legacy per-read scalar loop produced: one pre-split
// stream per read, each read bitwise equal to anneal_once on that stream.
TEST(ReplicaBank, SaBatchedReadsMatchScalarReads) {
  const model::QuboModel qubo = random_qubo(120, 7);
  SaParams params;
  params.sweeps = 40;
  params.num_reads = 6;
  params.seed = 17;

  const SimulatedAnnealer annealer(params);
  const SampleSet got = annealer.sample(qubo);
  ASSERT_EQ(got.size(), params.num_reads);

  util::Rng master(params.seed);
  for (std::size_t read = 0; read < params.num_reads; ++read) {
    SCOPED_TRACE("read " + std::to_string(read));
    util::Rng rng = master.split();
    const Sample expected = annealer.anneal_once(qubo, rng);
    expect_sample_eq(got.at(read), expected);
  }
}

// Dispatched tabu candidate scan vs a plain reference loop over admissibility
// (not tabu, or aspirating) with the strict-less, lowest-index tie rule.
TEST(ReplicaBank, TabuArgminMatchesReferenceScan) {
  util::Rng gen(23);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + gen.next_below(70);
    std::vector<double> deltas(n);
    std::vector<std::size_t> tabu_until(n);
    const std::size_t iteration = gen.next_below(50);
    // Quantized deltas force exact ties; generous tabu spans force both the
    // all-tabu and the aspiration branches across trials.
    for (std::size_t v = 0; v < n; ++v) {
      deltas[v] = static_cast<double>(gen.next_in(-4, 4));
      tabu_until[v] = gen.next_below(60);
    }
    const double energy = static_cast<double>(gen.next_in(-10, 10));
    const double best_energy = static_cast<double>(gen.next_in(-10, 10));

    std::size_t expected = n;
    double best_delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const bool tabu = tabu_until[v] >= iteration;
      const bool aspirates = energy + deltas[v] < best_energy - 1e-12;
      if (tabu && !aspirates) continue;
      if (expected == n || deltas[v] < best_delta) {
        expected = v;
        best_delta = deltas[v];
      }
    }

    {
      SimdLevelGuard guard(simd::Level::kScalar);
      EXPECT_EQ(tabu_argmin(deltas, tabu_until, iteration, energy, best_energy),
                expected);
    }
    if (avx2_available()) {
      SimdLevelGuard guard(simd::Level::kAvx2);
      EXPECT_EQ(tabu_argmin(deltas, tabu_until, iteration, energy, best_energy),
                expected);
    }
  }
}

// --------------------------------------------------- solver + observability -

anneal::HybridSolverParams solver_params(std::size_t lanes) {
  anneal::HybridSolverParams params;
  params.num_restarts = 4;
  params.sweeps = 60;
  params.seed = 42;
  params.threads = 1;
  params.exhaustive_max_vars = 0;  // force the sampling portfolio
  params.replica_lanes = lanes;
  return params;
}

// The solver contract the whole PR hangs on: the banked portfolio produces
// the same bytes at any bank width (width 1 degenerates to one restart per
// bank), and reports the width it ran with.
TEST(ReplicaBank, HybridSolverOutputInvariantAcrossBankWidth) {
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kReduced);
  const auto wide = HybridCqmSolver(solver_params(8)).solve(cqm);
  const auto narrow = HybridCqmSolver(solver_params(1)).solve(cqm);

  EXPECT_EQ(wide.stats.replica_lanes, 8u);
  EXPECT_EQ(narrow.stats.replica_lanes, 1u);
  expect_sample_eq(wide.best, narrow.best);
  ASSERT_EQ(wide.samples.size(), narrow.samples.size());
  for (std::size_t i = 0; i < wide.samples.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    expect_sample_eq(wide.samples.at(i), narrow.samples.at(i));
  }
}

TEST(ReplicaBank, HybridSolverCountsReplicaSweeps) {
  const model::CqmModel cqm = build_cqm(lrp::CqmVariant::kReduced);
  obs::MetricsRegistry reg;
  auto params = solver_params(8);
  params.metrics = &reg;
  const auto result = HybridCqmSolver(params).solve(cqm);
  EXPECT_TRUE(result.best.feasible);
  EXPECT_EQ(result.stats.replica_lanes, 8u);
  // Every lane-sweep the bank executes lands in the counter; the portfolio
  // runs num_restarts chains of `sweeps` sweeps at minimum (penalty rounds
  // and tempering only add to it).
  EXPECT_GE(reg.counter("qulrb_solver_replica_sweeps").value(),
            params.num_restarts * params.sweeps);
}

TEST(ReplicaBank, SolveEventSerializesReplicasFieldWhenKnown) {
  obs::SolveEvent event;
  event.source = "test";
  EXPECT_EQ(obs::to_json_line(event).find("replicas"), std::string::npos);
  event.replicas = 8;
  EXPECT_NE(obs::to_json_line(event).find("\"replicas\":8"), std::string::npos);
}

}  // namespace
}  // namespace qulrb::anneal
