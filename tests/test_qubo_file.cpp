#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/qubo_file.hpp"
#include "lrp/cqm_builder.hpp"
#include "model/cqm_to_qubo.hpp"
#include "quantum/qaoa.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::io {
namespace {

model::QuboModel random_qubo(util::Rng& rng, std::size_t n) {
  model::QuboModel q(n);
  q.add_offset(rng.next_normal());
  for (model::VarId v = 0; v < n; ++v) {
    if (rng.next_bool(0.8)) q.add_linear(v, rng.next_normal());
  }
  for (model::VarId i = 0; i < n; ++i) {
    for (model::VarId j = i + 1; j < n; ++j) {
      if (rng.next_bool(0.4)) q.add_quadratic(i, j, rng.next_normal());
    }
  }
  return q;
}

TEST(QuboFile, RoundTripPreservesEnergies) {
  util::Rng rng(11);
  const model::QuboModel original = random_qubo(rng, 8);
  std::stringstream ss;
  write_qubo(ss, original);
  const model::QuboModel loaded = read_qubo(ss);
  ASSERT_EQ(loaded.num_variables(), original.num_variables());
  for (unsigned bits = 0; bits < 256; ++bits) {
    model::State s(8);
    for (std::size_t q = 0; q < 8; ++q) s[q] = (bits >> q) & 1u;
    EXPECT_NEAR(loaded.energy(s), original.energy(s), 1e-9) << "bits " << bits;
  }
}

TEST(QuboFile, HeaderCountsAreConsistent) {
  model::QuboModel q(3);
  q.add_linear(0, 1.0);
  q.add_quadratic(0, 1, -2.0);
  q.add_quadratic(1, 2, 0.5);
  std::stringstream ss;
  write_qubo(ss, q);
  const std::string text = ss.str();
  EXPECT_NE(text.find("p qubo 0 3 1 2"), std::string::npos);
}

TEST(QuboFile, OffsetTravelsAsComment) {
  model::QuboModel q(1);
  q.add_offset(4.25);
  q.add_linear(0, 1.0);
  std::stringstream ss;
  write_qubo(ss, q);
  EXPECT_NE(ss.str().find("c offset 4.25"), std::string::npos);
  const model::QuboModel loaded = read_qubo(ss);
  EXPECT_DOUBLE_EQ(loaded.offset(), 4.25);
}

TEST(QuboFile, CommentsIgnored) {
  std::stringstream ss("c hello\np qubo 0 2 1 1\n0 0 1.5\n0 1 -1\n");
  const model::QuboModel q = read_qubo(ss);
  EXPECT_DOUBLE_EQ(q.linear(0), 1.5);
  EXPECT_DOUBLE_EQ(q.quadratic(0, 1), -1.0);
}

TEST(QuboFile, MalformedInputsRejected) {
  {
    std::stringstream ss("0 0 1.0\n");  // data before header
    EXPECT_THROW(read_qubo(ss), util::InvalidArgument);
  }
  {
    std::stringstream ss("p qubo 0 2 0 0\n5 5 1.0\n");  // node out of range
    EXPECT_THROW(read_qubo(ss), util::InvalidArgument);
  }
  {
    std::stringstream ss("p qubo 0 2 0 0\n0 x 1.0\n");  // garbage entry
    EXPECT_THROW(read_qubo(ss), util::InvalidArgument);
  }
  {
    std::stringstream ss("c only comments\n");  // no header at all
    EXPECT_THROW(read_qubo(ss), util::InvalidArgument);
  }
}

TEST(QuboFile, FileRoundTrip) {
  const std::string path = "/tmp/qulrb_test_model.qubo";
  util::Rng rng(3);
  const model::QuboModel original = random_qubo(rng, 5);
  write_qubo_file(path, original);
  const model::QuboModel loaded = read_qubo_file(path);
  model::State s{1, 0, 1, 1, 0};
  EXPECT_NEAR(loaded.energy(s), original.energy(s), 1e-9);
  std::remove(path.c_str());
  EXPECT_THROW(read_qubo_file(path), util::InvalidArgument);
}

TEST(QuboFile, LrpModelExportsAndReloads) {
  // End-to-end interop: the paper's CQM, penalty-converted, exported in
  // qbsolv format, reloaded, and energies cross-checked.
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({2.0, 1.0}, 4);
  const lrp::LrpCqm cqm(problem, lrp::CqmVariant::kReduced, 2);
  model::PenaltyOptions options;
  options.inequality = model::InequalityMethod::kUnbalanced;
  const auto conv = model::cqm_to_qubo(cqm.cqm(), options);

  std::stringstream ss;
  write_qubo(ss, conv.qubo);
  const model::QuboModel loaded = read_qubo(ss);
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    model::State s(loaded.num_variables());
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(2));
    EXPECT_NEAR(loaded.energy(s), conv.qubo.energy(s), 1e-9);
  }
}

// --------------------------------------------------------- noisy QAOA ------

TEST(QaoaNoise, NoiseDegradesButStillSolvesTinyInstance) {
  model::QuboModel q(2);
  q.add_linear(0, -2.0);
  q.add_linear(1, -1.0);
  q.add_quadratic(0, 1, 3.0);

  quantum::QaoaParams ideal;
  ideal.layers = 2;
  ideal.seed = 3;
  quantum::QaoaParams noisy = ideal;
  noisy.depolarizing_prob = 0.05;
  noisy.noise_trajectories = 4;

  const auto clean = quantum::QaoaSolver(ideal).solve_qubo(q);
  const auto degraded = quantum::QaoaSolver(noisy).solve_qubo(q);
  // Sampling still finds the optimum at 2 qubits; the optimized expectation
  // is (weakly) worse under noise.
  EXPECT_DOUBLE_EQ(degraded.best.energy, -2.0);
  EXPECT_GE(degraded.expectation, clean.expectation - 1e-9);
}

TEST(QaoaNoise, HeavyNoiseFlattensTheDistribution) {
  model::QuboModel q(3);
  for (model::VarId v = 0; v < 3; ++v) q.add_linear(v, -1.0);
  quantum::QaoaParams params;
  params.layers = 2;
  params.seed = 7;
  params.depolarizing_prob = 0.5;  // near-depolarized circuit
  params.noise_trajectories = 4;
  const auto result = quantum::QaoaSolver(params).solve_qubo(q);
  // Expectation approaches the uniform mean (-1.5) rather than the optimum (-3).
  EXPECT_GT(result.expectation, -2.8);
}

}  // namespace
}  // namespace qulrb::io
