#include <gtest/gtest.h>
#include "util/error.hpp"

#include "anneal/pimc.hpp"
#include "util/rng.hpp"

namespace qulrb::anneal {
namespace {

using model::IsingModel;
using model::QuboModel;
using model::VarId;

TEST(Pimc, FerromagneticChainAligns) {
  // Ferromagnetic chain (J < 0 favors alignment): ground energy -(n-1)|J|.
  const std::size_t n = 8;
  IsingModel m(n);
  for (VarId i = 0; i + 1 < n; ++i) m.add_coupling(i, i + 1, -1.0);
  PimcParams params;
  params.sweeps = 300;
  params.trotter_slices = 8;
  params.seed = 4;
  const Sample s = PimcAnnealer(params).sample_ising(m);
  EXPECT_DOUBLE_EQ(s.energy, -(static_cast<double>(n) - 1.0));
}

TEST(Pimc, FieldPolarizesSpins) {
  IsingModel m(6);
  for (VarId i = 0; i < 6; ++i) m.add_field(i, 1.0);  // favors spin -1
  PimcParams params;
  params.sweeps = 200;
  params.seed = 8;
  const Sample s = PimcAnnealer(params).sample_ising(m);
  EXPECT_DOUBLE_EQ(s.energy, -6.0);
  for (auto bit : s.state) EXPECT_EQ(bit, 0);  // spin -1 -> binary 0
}

TEST(Pimc, FrustratedTriangleGroundState) {
  // Antiferromagnetic triangle: ground energy is -J (one unsatisfied bond).
  IsingModel m(3);
  m.add_coupling(0, 1, 1.0);
  m.add_coupling(1, 2, 1.0);
  m.add_coupling(0, 2, 1.0);
  PimcParams params;
  params.sweeps = 300;
  params.seed = 12;
  const Sample s = PimcAnnealer(params).sample_ising(m);
  EXPECT_DOUBLE_EQ(s.energy, -1.0);
}

TEST(Pimc, QuboInterfaceReportsQuboEnergy) {
  QuboModel q(4);
  for (VarId v = 0; v < 4; ++v) q.add_linear(v, 1.0);  // all-zero optimal
  PimcParams params;
  params.sweeps = 200;
  params.seed = 3;
  const Sample s = PimcAnnealer(params).sample_qubo(q);
  EXPECT_DOUBLE_EQ(s.energy, 0.0);
  EXPECT_NEAR(q.energy(s.state), s.energy, 1e-12);
}

TEST(Pimc, DeterministicForSeed) {
  QuboModel q(5);
  util::Rng rng(77);
  for (VarId v = 0; v < 5; ++v) q.add_linear(v, rng.next_normal());
  PimcParams params;
  params.sweeps = 50;
  params.seed = 42;
  const Sample a = PimcAnnealer(params).sample_qubo(q);
  const Sample b = PimcAnnealer(params).sample_qubo(q);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.energy, b.energy);
}

TEST(Pimc, RejectsDegenerateParams) {
  IsingModel m(2);
  PimcParams params;
  params.trotter_slices = 1;
  EXPECT_THROW(PimcAnnealer(params).sample_ising(m), util::InvalidArgument);
  params.trotter_slices = 4;
  params.beta = 0.0;
  EXPECT_THROW(PimcAnnealer(params).sample_ising(m), util::InvalidArgument);
}

TEST(Pimc, EmptyModel) {
  IsingModel m(0);
  m.add_offset(2.0);
  const Sample s = PimcAnnealer(PimcParams{}).sample_ising(m);
  EXPECT_DOUBLE_EQ(s.energy, 2.0);
  EXPECT_TRUE(s.state.empty());
}

TEST(Pimc, MatchesClassicalOptimumOnRandomInstance) {
  util::Rng rng(101);
  QuboModel q(10);
  for (VarId i = 0; i < 10; ++i) q.add_linear(i, rng.next_normal());
  for (VarId i = 0; i < 10; ++i) {
    for (VarId j = i + 1; j < 10; ++j) {
      if (rng.next_bool(0.4)) q.add_quadratic(i, j, rng.next_normal());
    }
  }
  double brute = 1e300;
  for (unsigned bits = 0; bits < 1024; ++bits) {
    model::State s(10);
    for (std::size_t i = 0; i < 10; ++i) s[i] = (bits >> i) & 1u;
    brute = std::min(brute, q.energy(s));
  }
  PimcParams params;
  params.sweeps = 600;
  params.trotter_slices = 12;
  params.seed = 6;
  const Sample s = PimcAnnealer(params).sample_qubo(q);
  EXPECT_NEAR(s.energy, brute, 1e-9);
}

}  // namespace
}  // namespace qulrb::anneal
