// Property sweep over the Q_CQM1/Q_CQM2 builders: for a grid of (M, n,
// variant, seed) cells, random valid migration plans are encoded into the
// model's binary variables and the model's own view (objective value,
// feasibility classification, decode round-trip) is checked against the
// plan-level ground truth computed independently by MigrationPlan.

#include <gtest/gtest.h>

#include <tuple>

#include "lrp/cqm_builder.hpp"
#include "lrp/encoding.hpp"
#include "lrp/metrics.hpp"
#include "util/rng.hpp"

namespace qulrb::lrp {
namespace {

LrpProblem random_problem(util::Rng& rng, std::size_t m, std::int64_t n) {
  std::vector<double> loads(m);
  for (auto& w : loads) w = 0.5 + rng.next_double() * 3.5;
  return LrpProblem::uniform(std::move(loads), n);
}

/// Random valid plan: repeatedly move a random chunk from a random donor
/// column's diagonal to a random recipient.
MigrationPlan random_plan(util::Rng& rng, const LrpProblem& problem) {
  MigrationPlan plan = MigrationPlan::identity(problem);
  const std::size_t m = problem.num_processes();
  const int moves = static_cast<int>(rng.next_below(2 * m)) + 1;
  for (int move = 0; move < moves; ++move) {
    const auto from = static_cast<std::size_t>(rng.next_below(m));
    const auto to = static_cast<std::size_t>(rng.next_below(m));
    if (from == to) continue;
    const std::int64_t available = plan.count(from, from);
    if (available <= 0) continue;
    const std::int64_t count = rng.next_in(1, available);
    plan.add_count(from, from, -count);
    plan.add_count(to, from, count);
  }
  plan.validate(problem);
  return plan;
}

model::State encode_plan(const LrpCqm& cqm, const MigrationPlan& plan) {
  model::State state(cqm.num_binary_variables(), 0);
  const std::size_t m = cqm.num_processes();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (cqm.variant() == CqmVariant::kReduced && i == j) continue;
      if (cqm.coefficients(j).empty()) continue;
      const auto bits = encode_count(plan.count(i, j), cqm.coefficients(j));
      for (std::size_t l = 0; l < bits.size(); ++l) {
        if (bits[l]) state[cqm.var(i, j, l)] = 1;
      }
    }
  }
  return state;
}

class BuilderSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::int64_t, int>> {};

TEST_P(BuilderSweep, StructureMatchesFormulas) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + m * 7 +
                static_cast<std::uint64_t>(n));
  const LrpProblem problem = random_problem(rng, m, n);
  const std::size_t bits = bits_per_count(n);

  const LrpCqm full(problem, CqmVariant::kFull, n);
  const LrpCqm reduced(problem, CqmVariant::kReduced, n);

  EXPECT_EQ(full.num_binary_variables(), m * m * bits);
  EXPECT_EQ(reduced.num_binary_variables(), m * (m - 1) * bits);
  EXPECT_EQ(full.cqm().num_constraints(), 2 * m + 1);
  EXPECT_EQ(reduced.cqm().num_constraints(), 2 * m + 1);
  EXPECT_EQ(full.cqm().num_equality_constraints(), m);
  EXPECT_EQ(reduced.cqm().num_equality_constraints(), 0u);
  EXPECT_EQ(full.cqm().squared_groups().size(), m);
  EXPECT_EQ(reduced.cqm().squared_groups().size(), m);
}

TEST_P(BuilderSweep, EncodeDecodeRoundTripsRandomPlans) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 131 + m * 17 +
                static_cast<std::uint64_t>(n));
  const LrpProblem problem = random_problem(rng, m, n);

  for (const auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    const LrpCqm cqm(problem, variant, problem.total_tasks());
    for (int trial = 0; trial < 3; ++trial) {
      const MigrationPlan plan = random_plan(rng, problem);
      const model::State state = encode_plan(cqm, plan);
      const MigrationPlan decoded = cqm.decode(state);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          ASSERT_EQ(decoded.count(i, j), plan.count(i, j))
              << to_string(variant) << " m=" << m << " n=" << n << " (" << i << ","
              << j << ")";
        }
      }
    }
  }
}

TEST_P(BuilderSweep, ObjectiveEqualsVarianceForRandomPlans) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 733 + m + static_cast<std::uint64_t>(n));
  const LrpProblem problem = random_problem(rng, m, n);
  const double avg = problem.average_load();

  for (const auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    const LrpCqm cqm(problem, variant, problem.total_tasks());
    const MigrationPlan plan = random_plan(rng, problem);
    const model::State state = encode_plan(cqm, plan);
    const auto loads = plan.new_loads(problem);
    double expected = 0.0;
    for (double l : loads) expected += (l - avg) * (l - avg);
    EXPECT_NEAR(cqm.cqm().objective_value(state), expected,
                1e-6 * std::max(1.0, expected))
        << to_string(variant);
  }
}

TEST_P(BuilderSweep, FeasibilityClassificationMatchesPlanChecks) {
  const auto [m, n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 977 + m * 3 +
                static_cast<std::uint64_t>(n));
  const LrpProblem problem = random_problem(rng, m, n);
  const double l_max = problem.max_load();

  for (const auto variant : {CqmVariant::kReduced, CqmVariant::kFull}) {
    for (int trial = 0; trial < 3; ++trial) {
      const MigrationPlan plan = random_plan(rng, problem);
      const std::int64_t migrated = plan.total_migrated();
      const auto loads = plan.new_loads(problem);
      const bool capacity_ok =
          std::all_of(loads.begin(), loads.end(),
                      [&](double l) { return l <= l_max + 1e-9; });

      // k exactly at the plan's migration count: feasible iff capacity holds.
      const LrpCqm tight(problem, variant, migrated);
      EXPECT_EQ(tight.cqm().is_feasible(encode_plan(tight, plan), 1e-6),
                capacity_ok)
          << to_string(variant) << " tight";

      // k below the count: must be infeasible (if anything was migrated).
      if (migrated > 0) {
        const LrpCqm throttled(problem, variant, migrated - 1);
        EXPECT_FALSE(throttled.cqm().is_feasible(encode_plan(throttled, plan), 1e-6))
            << to_string(variant) << " throttled";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BuilderSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 8),
                       ::testing::Values<std::int64_t>(1, 2, 5, 13, 50),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace qulrb::lrp
