#include <gtest/gtest.h>

#include <limits>

#include "model/cqm.hpp"
#include "model/cqm_to_qubo.hpp"

namespace qulrb::model {
namespace {

State make_state(std::size_t n, unsigned bits) {
  State s(n);
  for (std::size_t i = 0; i < n; ++i) s[i] = (bits >> i) & 1u;
  return s;
}

/// Brute-force minimum of a QUBO over all assignments (n <= 20).
std::pair<State, double> brute_force_min(const QuboModel& q) {
  const std::size_t n = q.num_variables();
  State best;
  double best_e = std::numeric_limits<double>::infinity();
  for (unsigned bits = 0; bits < (1u << n); ++bits) {
    const State s = make_state(n, bits);
    const double e = q.energy(s);
    if (e < best_e) {
      best_e = e;
      best = s;
    }
  }
  return {best, best_e};
}

/// A tiny CQM: minimize -x0 - 2 x1 - 3 x2 subject to x0 + x1 + x2 <= 2.
CqmModel knapsack3() {
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  m.add_objective_linear(0, -1.0);
  m.add_objective_linear(1, -2.0);
  m.add_objective_linear(2, -3.0);
  LinearExpr cap;
  cap.add_term(0, 1.0);
  cap.add_term(1, 1.0);
  cap.add_term(2, 1.0);
  m.add_constraint(cap, Sense::LE, 2.0, "capacity");
  return m;
}

TEST(CqmToQubo, SlackMinimizerIsCqmOptimum) {
  const CqmModel cqm = knapsack3();
  const QuboConversion conv = cqm_to_qubo(cqm);
  ASSERT_LE(conv.qubo.num_variables(), 20u);
  const auto [state, energy] = brute_force_min(conv.qubo);
  const State projected = conv.project(state);
  // CQM optimum: x1 = x2 = 1 (objective -5), x0 = 0.
  EXPECT_TRUE(cqm.is_feasible(projected));
  EXPECT_DOUBLE_EQ(cqm.objective_value(projected), -5.0);
  EXPECT_NEAR(energy, -5.0, 1e-9);  // slack exactly cancels the penalty
}

TEST(CqmToQubo, UnbalancedMinimizerIsFeasible) {
  const CqmModel cqm = knapsack3();
  PenaltyOptions options;
  options.inequality = InequalityMethod::kUnbalanced;
  const QuboConversion conv = cqm_to_qubo(cqm, options);
  EXPECT_EQ(conv.num_slack_variables, 0u);  // the point of the method
  const auto [state, energy] = brute_force_min(conv.qubo);
  const State projected = conv.project(state);
  EXPECT_TRUE(cqm.is_feasible(projected));
  EXPECT_DOUBLE_EQ(cqm.objective_value(projected), -5.0);
}

TEST(CqmToQubo, EqualityConstraintEncodedExactly) {
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  m.add_objective_linear(0, -1.0);  // prefer x0 on
  LinearExpr sum;
  for (VarId v = 0; v < 3; ++v) sum.add_term(v, 1.0);
  m.add_constraint(sum, Sense::EQ, 1.0, "one-hot");
  const QuboConversion conv = cqm_to_qubo(m);
  EXPECT_EQ(conv.num_slack_variables, 0u);  // equalities need no slack
  const auto [state, energy] = brute_force_min(conv.qubo);
  EXPECT_EQ(conv.project(state), make_state(3, 0b001));
  EXPECT_NEAR(energy, -1.0, 1e-9);
}

TEST(CqmToQubo, GeConstraintHandled) {
  CqmModel m;
  for (int i = 0; i < 3; ++i) m.add_variable();
  // Minimize x0 + x1 + x2 subject to sum >= 2 -> optimum picks exactly 2.
  for (VarId v = 0; v < 3; ++v) m.add_objective_linear(v, 1.0);
  LinearExpr sum;
  for (VarId v = 0; v < 3; ++v) sum.add_term(v, 1.0);
  m.add_constraint(sum, Sense::GE, 2.0, "at-least-two");
  const QuboConversion conv = cqm_to_qubo(m);
  const auto [state, energy] = brute_force_min(conv.qubo);
  const State projected = conv.project(state);
  EXPECT_TRUE(m.is_feasible(projected));
  EXPECT_DOUBLE_EQ(m.objective_value(projected), 2.0);
}

TEST(CqmToQubo, SquaredGroupsExpandExactly) {
  CqmModel m;
  for (int i = 0; i < 4; ++i) m.add_variable();
  LinearExpr g(-2.0);
  for (VarId v = 0; v < 4; ++v) g.add_term(v, 1.0);
  m.add_squared_group(g, 1.5);
  const QuboConversion conv = cqm_to_qubo(m);
  for (unsigned bits = 0; bits < 16; ++bits) {
    const State s = make_state(4, bits);
    EXPECT_NEAR(conv.qubo.energy(s), m.objective_value(s), 1e-9) << bits;
  }
}

TEST(CqmToQubo, ProjectStripsSlack) {
  const CqmModel cqm = knapsack3();
  const QuboConversion conv = cqm_to_qubo(cqm);
  EXPECT_EQ(conv.num_original_variables, 3u);
  EXPECT_GT(conv.qubo.num_variables(), 3u);  // has slack bits
  State full(conv.qubo.num_variables(), 1);
  const State projected = conv.project(full);
  EXPECT_EQ(projected.size(), 3u);
}

TEST(CqmToQubo, ExplicitLambdaIsUsed) {
  const CqmModel cqm = knapsack3();
  PenaltyOptions options;
  options.lambda = 123.0;
  const QuboConversion conv = cqm_to_qubo(cqm, options);
  EXPECT_DOUBLE_EQ(conv.lambda_used, 123.0);
}

TEST(CqmToQubo, AutoLambdaScalesWithObjective) {
  const CqmModel cqm = knapsack3();
  const QuboConversion conv = cqm_to_qubo(cqm);
  EXPECT_GT(conv.lambda_used, 3.0);  // larger than any objective coefficient
}

TEST(CqmToQubo, InfeasibleConstraintStillProducesModel) {
  CqmModel m;
  m.add_variable();
  LinearExpr lhs;
  lhs.add_term(0, 1.0);
  m.add_constraint(lhs, Sense::GE, 5.0, "impossible");  // max lhs is 1
  const QuboConversion conv = cqm_to_qubo(m);
  // The QUBO minimizer should at least minimize violation (x0 = 1).
  const auto [state, energy] = brute_force_min(conv.qubo);
  EXPECT_EQ(conv.project(state)[0], 1);
}

TEST(CqmToQubo, FractionalSlackResolution) {
  CqmModel m;
  for (int i = 0; i < 2; ++i) m.add_variable();
  m.add_objective_linear(0, -1.0);
  m.add_objective_linear(1, -1.0);
  LinearExpr cap;
  cap.add_term(0, 0.6);
  cap.add_term(1, 0.6);
  m.add_constraint(cap, Sense::LE, 1.0, "fractional");
  PenaltyOptions options;
  options.slack_resolution = 0.1;
  // With fractional coefficients the smallest violation (0.2 here) is
  // squared, so the automatic lambda derived from coefficient magnitudes is
  // not sufficient — callers must scale it for the violation granularity.
  options.lambda = 100.0;
  const QuboConversion conv = cqm_to_qubo(m, options);
  const auto [state, energy] = brute_force_min(conv.qubo);
  const State projected = conv.project(state);
  EXPECT_TRUE(m.is_feasible(projected));
  // Only one variable fits under the 1.0 cap.
  EXPECT_DOUBLE_EQ(m.objective_value(projected), -1.0);
}

}  // namespace
}  // namespace qulrb::model
