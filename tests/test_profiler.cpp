#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/json_value.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profile_export.hpp"
#include "obs/profiler.hpp"
#include "obs/stack_unwind.hpp"

namespace qulrb::obs {

// External-linkage, noinline call chain: with CMAKE_ENABLE_EXPORTS these
// land in the dynamic symbol table, so dladdr can name them, and the asm
// barriers pin each call in a real (non-tail) frame the walker must cross.
__attribute__((noinline)) int profiler_test_leaf(std::uintptr_t* pcs,
                                                 int max_frames) {
  const int n = prof::unwind_here(pcs, max_frames, 0);
  asm volatile("" ::: "memory");
  return n;
}

__attribute__((noinline)) int profiler_test_mid(std::uintptr_t* pcs,
                                                int max_frames) {
  const int n = profiler_test_leaf(pcs, max_frames);
  asm volatile("" ::: "memory");
  return n;
}

__attribute__((noinline)) int profiler_test_outer(std::uintptr_t* pcs,
                                                  int max_frames) {
  const int n = profiler_test_mid(pcs, max_frames);
  asm volatile("" ::: "memory");
  return n;
}

namespace {

// ------------------------------------------------------------- unwinder ----

TEST(StackUnwind, KnownCallChainResolvesToNames) {
  prof::init_unwinder();
  std::uintptr_t pcs[prof::kMaxFrames] = {};
  const int n = profiler_test_outer(pcs, prof::kMaxFrames);
  ASSERT_GE(n, 3) << "the walker must cross the three test frames";

  prof::Symbolizer symbolizer;
  std::string joined;
  for (int i = 0; i < n; ++i) {
    joined += symbolizer.resolve_return_address(pcs[i]);
    joined += ';';
  }
  EXPECT_NE(joined.find("profiler_test_mid"), std::string::npos) << joined;
  EXPECT_NE(joined.find("profiler_test_outer"), std::string::npos) << joined;
}

TEST(StackUnwind, TruncatesAtMaxFrames) {
  prof::init_unwinder();
  std::uintptr_t pcs[prof::kMaxFrames] = {};
  const int n = profiler_test_outer(pcs, 2);
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 2);
}

TEST(Symbolizer, ForeignAndGarbagePcsDegradeToHexNotCrash) {
  prof::Symbolizer symbolizer;
  // Unmapped / nonsense addresses must come back as something printable.
  for (const std::uintptr_t pc :
       {std::uintptr_t{0}, std::uintptr_t{0x10}, std::uintptr_t{0xdeadbeef},
        ~std::uintptr_t{0} - 64}) {
    const std::string name = symbolizer.resolve(pc);
    EXPECT_FALSE(name.empty());
    // Frame names feed the folded format, whose separator is ';'.
    EXPECT_EQ(name.find(';'), std::string::npos);
  }
  // Same pc resolves identically through the cache.
  EXPECT_EQ(symbolizer.resolve(0xdeadbeef), symbolizer.resolve(0xdeadbeef));
}

// ---------------------------------------------------------------- clock ----

TEST(ObsClock, StrictStampsAreUniqueAcrossThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::vector<double>> stamps(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stamps, t] {
      stamps[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        stamps[t].push_back(clock::strict_us());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<double> unique;
  for (const auto& vec : stamps) {
    for (double s : vec) unique.insert(s);
    // Per-thread sequences are strictly increasing.
    for (std::size_t i = 1; i < vec.size(); ++i) EXPECT_GT(vec[i], vec[i - 1]);
  }
  EXPECT_EQ(unique.size(), kThreads * kPerThread);
}

// ------------------------------------------------------------- profiler ----

double burn_until(const Profiler& profiler, std::uint64_t min_samples) {
  volatile double acc = 1.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (profiler.total_samples() < min_samples &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 20000; ++i) acc = acc * 1.0000001 + 0.1;
  }
  return acc;
}

TEST(Profiler, SamplesCarryPhaseAndRidAttribution) {
  Profiler::Params params;
  params.hz = 500;
  params.ring_capacity = 2048;
  Profiler profiler(params);
  ASSERT_TRUE(profiler.start());
  {
    prof::RidScope rid_scope(42);
    prof::PhaseScope phase_scope("test-burn");
    burn_until(profiler, 25);
  }
  profiler.stop();
  ASSERT_GE(profiler.total_samples(), 25u)
      << "ITIMER_PROF did not fire; CPU-time sampling unavailable?";

  const std::vector<ProfileSample> samples = profiler.snapshot(0.0);
  ASSERT_FALSE(samples.empty());
  std::size_t attributed = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) EXPECT_GE(samples[i].t_us, samples[i - 1].t_us);
    if (samples[i].rid == 42 && samples[i].phase != nullptr &&
        std::strcmp(samples[i].phase, "test-burn") == 0) {
      ++attributed;
      EXPECT_GT(samples[i].depth, 0);
    }
  }
  // The burn loop dominates the process's CPU while sampling, so most
  // samples must land inside the scope.
  EXPECT_GT(attributed, samples.size() / 2);
}

TEST(Profiler, SecondSamplerCannotStartWhileFirstRuns) {
  Profiler first;
  ASSERT_TRUE(first.start());
  Profiler second;
  EXPECT_FALSE(second.start());
  first.stop();
  // The process-wide slot frees on stop.
  EXPECT_TRUE(second.start());
  second.stop();
}

TEST(Profiler, DisabledRateRefusesToStart) {
  Profiler::Params params;
  params.hz = 0;
  Profiler profiler(params);
  EXPECT_FALSE(profiler.start());
  profiler.stop();  // idempotent no-op
}

TEST(Profiler, WindowSnapshotExcludesOldSamples) {
  Profiler::Params params;
  params.hz = 500;
  Profiler profiler(params);
  ASSERT_TRUE(profiler.start());
  burn_until(profiler, 10);
  profiler.stop();
  // A window far in the past covers everything; a zero-width future-anchored
  // window covers nothing the ring recorded before now.
  EXPECT_FALSE(profiler.snapshot(1e6).empty());
  EXPECT_TRUE(profiler.snapshot(1e-9).empty());
}

// --------------------------------------------------------------- export ----

std::vector<ProfileSample> synthetic_samples() {
  std::uintptr_t pcs[prof::kMaxFrames] = {};
  const int n = profiler_test_outer(pcs, prof::kMaxFrames);
  ProfileSample attributed;
  attributed.ticket = 1;
  attributed.t_us = 10.0;
  attributed.rid = 7;
  attributed.phase = "polish";
  attributed.depth = n;
  std::memcpy(attributed.pcs, pcs, sizeof(pcs));
  ProfileSample duplicate = attributed;
  duplicate.ticket = 2;
  duplicate.t_us = 20.0;
  ProfileSample unwound_none;  // depth 0: the walker found nothing
  unwound_none.ticket = 3;
  unwound_none.t_us = 30.0;
  return {attributed, duplicate, unwound_none};
}

TEST(ProfileExport, FoldedFoldsDuplicateStacksAndTagsAttribution) {
  const std::vector<ProfileSample> samples = synthetic_samples();
  prof::Symbolizer symbolizer;
  ProfileExportOptions options;
  options.source = "testsrc";
  const std::string folded =
      profile_to_folded(samples, symbolizer, options);

  bool found_attributed = false;
  bool found_unwound_none = false;
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t nl = folded.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "folded lines are newline-terminated";
    const std::string line = folded.substr(pos, nl - pos);
    pos = nl + 1;
    ++lines;
    EXPECT_EQ(line.rfind("testsrc", 0), 0u) << line;
    if (line.rfind("testsrc;rid:7;phase:polish;", 0) == 0) {
      found_attributed = true;
      // Two identical stacks fold into one line with count 2.
      EXPECT_EQ(line.substr(line.rfind(' ') + 1), "2") << line;
      EXPECT_NE(line.find("profiler_test_mid"), std::string::npos) << line;
    }
    if (line.rfind("testsrc;[unwound:none]", 0) == 0) {
      found_unwound_none = true;
      EXPECT_EQ(line.substr(line.rfind(' ') + 1), "1") << line;
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(found_attributed);
  EXPECT_TRUE(found_unwound_none);

  // Deterministic: same samples, same text.
  prof::Symbolizer fresh;
  EXPECT_EQ(folded, profile_to_folded(samples, fresh, options));
}

TEST(ProfileExport, JsonDocumentAggregatesPhases) {
  const std::vector<ProfileSample> samples = synthetic_samples();
  prof::Symbolizer symbolizer;
  ProfileExportOptions options;
  options.source = "testsrc";
  options.hz = 99;
  options.window_s = 2.0;
  const io::JsonValue doc =
      io::JsonValue::parse(profile_to_json(samples, symbolizer, options));
  EXPECT_EQ(doc.string_or("source", ""), "testsrc");
  EXPECT_EQ(doc.int_or("hz", 0), 99);
  EXPECT_DOUBLE_EQ(doc.number_or("window_s", 0.0), 2.0);
  EXPECT_EQ(doc.int_or("samples", 0), 3);
  EXPECT_EQ(doc.int_or("distinct_stacks", 0), 2);
  const io::JsonValue* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  bool found = false;
  for (const io::JsonValue& entry : phases->as_array()) {
    if (entry.string_or("phase", "") == "polish") {
      found = true;
      EXPECT_EQ(entry.int_or("rid", 0), 7);
      EXPECT_EQ(entry.int_or("samples", 0), 2);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_NE(doc.find("folded"), nullptr);
}

TEST(ProfileExport, InstanceTaggingPrefixesEveryLine) {
  const std::string folded = "a;b;c 3\nx;y 1\n";
  const std::string tagged = folded_with_instance(folded, "127.0.0.1:7471");
  EXPECT_EQ(tagged, "instance:127.0.0.1:7471;a;b;c 3\n"
                    "instance:127.0.0.1:7471;x;y 1\n");
  EXPECT_EQ(folded_with_instance("", "b"), "");
}

// ------------------------------------------------------- process metrics ----

TEST(ProcessMetrics, ExportsSaneSelfValues) {
  MetricsRegistry registry;
  ProcessMetrics metrics(registry);
  // Burn a little CPU so the rusage counter is visibly nonzero.
  volatile double acc = 1.0;
  for (int i = 0; i < 2000000; ++i) acc = acc * 1.0000001 + 0.1;
  metrics.update();

  EXPECT_GE(registry.gauge("qulrb_process_cpu_seconds_total").value(), 0.0);
  EXPECT_GT(registry.gauge("qulrb_process_resident_memory_bytes").value(),
            1024.0 * 1024.0);
  EXPECT_GE(registry.gauge("qulrb_process_open_fds").value(), 3.0);
  // A plausible unix timestamp (after 2001), not an uptime.
  EXPECT_GT(registry.gauge("qulrb_process_start_time_seconds").value(), 1e9);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("qulrb_process_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(text.find("qulrb_process_resident_memory_bytes"),
            std::string::npos);
  EXPECT_NE(text.find("qulrb_process_open_fds"), std::string::npos);
  EXPECT_NE(text.find("qulrb_process_start_time_seconds"), std::string::npos);
}

}  // namespace
}  // namespace qulrb::obs
