#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "io/json.hpp"
#include "io/report.hpp"
#include "lrp/solver.hpp"
#include "util/error.hpp"

namespace qulrb::io {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter json;
    json.begin_object().end_object();
    EXPECT_EQ(json.str(), "{}");
  }
  {
    JsonWriter json;
    json.begin_array().end_array();
    EXPECT_EQ(json.str(), "[]");
  }
}

TEST(JsonWriter, ScalarsAndCommas) {
  JsonWriter json;
  json.begin_object();
  json.field("a", 1);
  json.field("b", 2.5);
  json.field("c", "x");
  json.field("d", true);
  json.key("e").null();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":2.5,"c":"x","d":true,"e":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("xs").begin_array().value(1).value(2).end_array();
  json.key("o").begin_object().field("k", "v").end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"xs":[1,2],"o":{"k":"v"}})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  JsonWriter json;
  json.begin_object();
  json.field("q", "a\"b\\c\nd");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"q\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, MisuseIsRejected) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1), util::InvalidArgument);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), util::InvalidArgument);  // key in array
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW((void)json.str(), util::InvalidArgument);  // unclosed
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.end_object(), util::InvalidArgument);  // nothing open
  }
}

TEST(Report, RecordSerializesAllFields) {
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({2.0, 1.0}, 4);
  lrp::GreedySolver greedy;
  lrp::ProactLbSolver proactlb;
  std::vector<lrp::SolverReport> reports;
  reports.push_back(lrp::run_and_evaluate(greedy, problem));
  reports.push_back(lrp::run_and_evaluate(proactlb, problem));
  const ExperimentRecord record = make_record("toy", problem, std::move(reports));
  const std::string json = to_json(record);
  EXPECT_NE(json.find("\"scenario\":\"toy\""), std::string::npos);
  EXPECT_NE(json.find("\"num_processes\":2"), std::string::npos);
  EXPECT_NE(json.find("\"Greedy\""), std::string::npos);
  EXPECT_NE(json.find("\"ProactLB\""), std::string::npos);
  EXPECT_NE(json.find("\"migrated_tasks\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, BatchIsJsonArray) {
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({2.0, 1.0}, 4);
  const ExperimentRecord record = make_record("a", problem, {});
  const std::string json = to_json(std::vector<ExperimentRecord>{record, record});
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(Report, WriteJsonFileRoundTrip) {
  const std::string path = "/tmp/qulrb_test_report.json";
  write_json_file(path, "{\"ok\":true}");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":true}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qulrb::io
