// End-to-end artifact pipeline: the full loop a user of the paper's
// repository walks — generate an imbalance input CSV, solve, write the
// Appendix-B output CSV and a JSON report, then reload every artifact and
// cross-check that all three views agree.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/lrp_io.hpp"
#include "io/report.hpp"
#include "lrp/kselect.hpp"
#include "lrp/registry.hpp"
#include "workloads/scenarios.hpp"

namespace qulrb {
namespace {

class PipelineIo : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(input_path.c_str());
    std::remove(output_path.c_str());
    std::remove(json_path.c_str());
  }

  const std::string input_path = "/tmp/qulrb_pipe_in.csv";
  const std::string output_path = "/tmp/qulrb_pipe_out.csv";
  const std::string json_path = "/tmp/qulrb_pipe_report.json";
};

TEST_F(PipelineIo, FullLoopAgreesAcrossArtifacts) {
  // 1. Generate and persist the input.
  const auto scenario = workloads::scenarios::imbalance_levels()[2];
  io::write_input_file(input_path, scenario.problem);

  // 2. Reload it (the CLI's view of the world).
  const lrp::LrpProblem problem = io::read_input_file(input_path);
  EXPECT_NEAR(problem.imbalance_ratio(), scenario.problem.imbalance_ratio(), 1e-6);

  // 3. Solve via the registry with the paper's k1 protocol.
  lrp::SolverSpec spec;
  spec.name = "qcqm1";
  spec.sweeps = 800;
  spec.restarts = 2;
  spec.seed = 77;
  const auto solver = lrp::make_solver(spec, problem);
  const lrp::SolverReport report = lrp::run_and_evaluate(*solver, problem);

  // 4. Persist the plan and a JSON record.
  io::write_output_file(output_path, problem, report.output.plan);
  const auto record = io::make_record("pipe", problem, {report});
  io::write_json_file(json_path, io::to_json(record));

  // 5. Reload the plan; all derived numbers must match the live run.
  const lrp::MigrationPlan reloaded =
      io::plan_from_output_table(io::read_csv_file(output_path));
  EXPECT_NO_THROW(reloaded.validate(problem));
  EXPECT_EQ(reloaded.total_migrated(), report.metrics.total_migrated);
  const auto metrics = lrp::evaluate_plan(problem, reloaded);
  EXPECT_NEAR(metrics.imbalance_after, report.metrics.imbalance_after, 1e-6);
  EXPECT_NEAR(metrics.speedup, report.metrics.speedup, 1e-6);

  // 6. The JSON record carries the same numbers (string-level spot checks).
  std::ifstream in(json_path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"name\":\"Q_CQM1\""), std::string::npos);
  EXPECT_NE(json.find("\"migrated_tasks\":" +
                      std::to_string(report.metrics.total_migrated)),
            std::string::npos);
}

TEST_F(PipelineIo, KSelectionSurvivesTheRoundTrip) {
  const auto scenario = workloads::scenarios::imbalance_levels()[3];
  io::write_input_file(input_path, scenario.problem);
  const lrp::LrpProblem reloaded = io::read_input_file(input_path);
  const lrp::KSelection live = lrp::select_k(scenario.problem);
  const lrp::KSelection from_file = lrp::select_k(reloaded);
  EXPECT_EQ(live.k1, from_file.k1);
  EXPECT_EQ(live.k2, from_file.k2);
}

TEST_F(PipelineIo, EverySolverNameProducesConsistentArtifacts) {
  const lrp::LrpProblem problem = lrp::LrpProblem::uniform({2.5, 1.0, 1.0}, 6);
  io::write_input_file(input_path, problem);
  for (const char* name : {"greedy", "kk", "proactlb"}) {
    lrp::SolverSpec spec;
    spec.name = name;
    const auto solver = lrp::make_solver(spec, problem);
    const lrp::SolverReport report = lrp::run_and_evaluate(*solver, problem);
    io::write_output_file(output_path, problem, report.output.plan);
    const lrp::MigrationPlan reloaded =
        io::plan_from_output_table(io::read_csv_file(output_path));
    EXPECT_EQ(reloaded.total_migrated(), report.metrics.total_migrated) << name;
  }
}

}  // namespace
}  // namespace qulrb
