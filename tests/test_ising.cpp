#include <gtest/gtest.h>

#include "model/ising.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qulrb::model {
namespace {

std::vector<std::int8_t> make_spins(std::size_t n, unsigned bits) {
  std::vector<std::int8_t> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = ((bits >> i) & 1u) ? std::int8_t{1} : std::int8_t{-1};
  }
  return s;
}

TEST(Ising, FieldEnergy) {
  IsingModel m(2);
  m.add_field(0, 1.0);
  m.add_field(1, -2.0);
  EXPECT_DOUBLE_EQ(m.energy(make_spins(2, 0b01)), 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(m.energy(make_spins(2, 0b11)), 1.0 - 2.0);
}

TEST(Ising, CouplingEnergy) {
  IsingModel m(2);
  m.add_coupling(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(m.energy(make_spins(2, 0b11)), 1.0);   // aligned up
  EXPECT_DOUBLE_EQ(m.energy(make_spins(2, 0b00)), 1.0);   // aligned down
  EXPECT_DOUBLE_EQ(m.energy(make_spins(2, 0b01)), -1.0);  // anti-aligned
}

TEST(Ising, SelfCouplingRejected) {
  IsingModel m(2);
  EXPECT_THROW(m.add_coupling(1, 1, 1.0), util::InvalidArgument);
}

TEST(Ising, LocalFieldMatchesDefinition) {
  IsingModel m(3);
  m.add_field(1, 0.5);
  m.add_coupling(0, 1, 2.0);
  m.add_coupling(1, 2, -1.0);
  const auto spins = make_spins(3, 0b101);  // +1, -1, +1
  EXPECT_DOUBLE_EQ(m.local_field(spins, 1), 0.5 + 2.0 * 1 + (-1.0) * 1);
}

TEST(Ising, QuboRoundTripPreservesEnergies) {
  util::Rng rng(7);
  QuboModel qubo(5);
  qubo.add_offset(rng.next_normal());
  for (VarId i = 0; i < 5; ++i) qubo.add_linear(i, rng.next_normal());
  for (VarId i = 0; i < 5; ++i) {
    for (VarId j = i + 1; j < 5; ++j) {
      if (rng.next_bool(0.6)) qubo.add_quadratic(i, j, rng.next_normal());
    }
  }
  const IsingModel ising = qubo_to_ising(qubo);
  const QuboModel back = ising_to_qubo(ising);
  for (unsigned bits = 0; bits < 32; ++bits) {
    State s(5);
    for (std::size_t i = 0; i < 5; ++i) s[i] = (bits >> i) & 1u;
    const auto spins = state_to_spins(s);
    EXPECT_NEAR(qubo.energy(s), ising.energy(spins), 1e-9) << "bits " << bits;
    EXPECT_NEAR(qubo.energy(s), back.energy(s), 1e-9) << "bits " << bits;
  }
}

TEST(Ising, StateSpinConversionRoundTrip) {
  const State s{1, 0, 1, 1, 0};
  const auto spins = state_to_spins(s);
  EXPECT_EQ(spins[0], 1);
  EXPECT_EQ(spins[1], -1);
  EXPECT_EQ(spins_to_state(spins), s);
}

TEST(Ising, AdjacencySymmetric) {
  IsingModel m(3);
  m.add_coupling(0, 2, 1.5);
  const auto& adj = m.adjacency();
  ASSERT_EQ(adj[0].size(), 1u);
  ASSERT_EQ(adj[2].size(), 1u);
  EXPECT_EQ(adj[0][0].other, 2u);
  EXPECT_EQ(adj[2][0].other, 0u);
  EXPECT_TRUE(adj[1].empty());
}

TEST(Ising, OffsetPropagatesThroughConversion) {
  QuboModel qubo(1);
  qubo.add_offset(7.0);
  qubo.add_linear(0, 2.0);
  const IsingModel ising = qubo_to_ising(qubo);
  EXPECT_NEAR(ising.energy(make_spins(1, 0b1)), qubo.energy(State{1}), 1e-12);
  EXPECT_NEAR(ising.energy(make_spins(1, 0b0)), qubo.energy(State{0}), 1e-12);
}

TEST(Ising, SpinCountMismatchThrows) {
  IsingModel m(2);
  EXPECT_THROW(m.energy(make_spins(1, 0)), util::InvalidArgument);
}

}  // namespace
}  // namespace qulrb::model
