// qulrb_serve — JSON-lines rebalancing service front-end.
//
//   qulrb_serve [--port P] [--workers N] [--max-pending N] [--cache N]
//               [--default-deadline-ms X] [--solver-threads N]
//               [--trace N] [--metrics-out FILE] [--trace-out FILE]
//               [--events-out FILE] [--profile-hz N] [--quiet]
//
// --trace N records a Perfetto trace per request and keeps the last N for
// the {"op":"trace"} op; {"op":"metrics"} answers a Prometheus text scrape
// either way. --events-out appends one structured JSON line per finished
// request (see obs::SolveEvent).
//
// Without --port, speaks the protocol on stdin/stdout (one JSON object per
// line; responses may arrive out of submission order). With --port, accepts
// TCP connections on 127.0.0.1:P, one protocol session per connection.
// {"op":"shutdown"} drains all admitted work (queued and running) and stops
// the whole server.
//
// SIGINT/SIGTERM take a faster graceful path: the queue is shed (each
// pending request answered kCancelled), running solves finish, and the final
// metrics exposition / retained traces are flushed to --metrics-out /
// --trace-out before the process exits 0. A supervisor restarting the
// service therefore always finds the last scrape and the last traces on
// disk, even when no scraper was attached.
//
// See src/service/protocol.hpp for the line format.

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "anneal/simd.hpp"
#include "io/json.hpp"
#include "obs/build_info.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram_wire.hpp"
#include "obs/profile_export.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "service/protocol.hpp"
#include "service/rebalance_service.hpp"
#include "util/error.hpp"

namespace {

using namespace qulrb;

/// Written by the signal handler, polled by every accept/read loop. A plain
/// volatile sig_atomic_t is the only thing a handler may portably touch.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_signal(int signum) { g_signal = signum; }

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: blocking reads must EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A client that closes (or half-closes) its socket while a response is in
  // flight must surface as EPIPE from send(), not kill the server. send()
  // also passes MSG_NOSIGNAL, but the signal disposition covers any write
  // path that doesn't.
  ::signal(SIGPIPE, SIG_IGN);
}

bool signalled() { return g_signal != 0; }

struct ServeOptions {
  int port = 0;  ///< 0 = stdin/stdout mode
  service::ServiceParams service;
  std::string metrics_out;  ///< final Prometheus exposition on shutdown
  std::string trace_out;    ///< retained Perfetto docs (JSON array) on shutdown
  std::string events_out;   ///< JSONL SolveEvent sink (live, appended)
  double events_max_mb = 0.0;  ///< size cap per events file (0 = unbounded)
  bool quiet = false;

  // Flight recorder: always on unless --no-flight (the ring is lock-light
  // and costs <2% on the recorded sweep path — see bench_obs).
  bool flight = true;
  std::size_t flight_capacity = 4096;
  double flight_window_s = 30.0;  ///< seconds snapshotted per anomaly dump
  std::string flight_dir;         ///< anomaly dump directory ("" = no dumps)

  // Continuous sampling profiler: on by default at the classic 99 Hz
  // (<1% sweep overhead — see BENCH_obs.json); 0 disables. The {"op":
  // "profile","seconds":S} op snapshots the last S seconds of the ring.
  int profile_hz = 99;
  std::size_t profile_capacity = 4096;

  // SLO engine objectives (triggers are the flight recorder's dump signal).
  double slo_latency_ms = 50.0;
  double slo_target = 0.99;
  double slo_fast_s = 300.0;
  double slo_slow_s = 3600.0;
  double slo_burn_threshold = 2.0;
  std::uint64_t deadline_burst = 8;
  std::size_t queue_hwm = 0;
};

/// One protocol session: parses request lines, forwards them to the service,
/// and serialises response lines through a caller-provided writer. Thread
/// safe against the service's worker callbacks.
class ProtocolSession {
 public:
  ProtocolSession(service::RebalanceService& svc,
                  std::function<void(const std::string&)> write_line,
                  std::atomic<bool>& shutdown_flag)
      : svc_(svc), write_line_(std::move(write_line)), shutdown_(shutdown_flag) {}

  /// Handle one request line. Returns false when the session should end
  /// (shutdown requested).
  bool handle_line(const std::string& line) {
    service::ProtocolRequest request;
    try {
      request = service::parse_request_line(line);
    } catch (const std::exception& e) {
      write(service::encode_error(e.what(), 0));
      return true;
    }
    switch (request.op) {
      case service::OpKind::kShutdown:
        shutdown_.store(true, std::memory_order_relaxed);
        return false;
      case service::OpKind::kStats:
        write(service::encode_stats(svc_.stats()));
        return true;
      case service::OpKind::kHealth:
        // The router's 50ms probe: relaxed-atomic reads only, never the
        // mutex-taking stats() snapshot.
        write(service::encode_health(svc_.queue_depth(), svc_.inflight(),
                                     svc_.cache_hit_rate()));
        return true;
      case service::OpKind::kMetrics:
        write(service::encode_metrics(svc_.metrics_text()));
        return true;
      case service::OpKind::kTrace:
        write(service::encode_traces(svc_.last_traces(request.trace_count)));
        return true;
      case service::OpKind::kObs: {
        // Federation pull: the whole registry in wire form, this binary's
        // identity, and the live SLO view. Refresh the point-in-time gauges
        // first so the snapshot matches what a metrics scrape would see.
        (void)svc_.metrics_text();
        io::JsonWriter w;
        w.begin_object();
        w.field("role", "serve");
        const obs::BuildInfo info = obs::build_info(
            anneal::simd::level_name(anneal::simd::active_level()));
        w.key("build").begin_object();
        w.field("version", info.version);
        w.field("revision", info.revision);
        w.field("build", info.build_type);
        w.field("simd_level", info.simd_level);
        w.end_object();
        w.key("registry");
        obs::write_registry_obs_json(svc_.metrics_registry(), w);
        if (svc_.params().slo != nullptr) {
          w.key("slo");
          svc_.params().slo->write_json(w, svc_.now_ms());
        }
        w.end_object();
        write(service::encode_obs_response(request.client_id, w.str()));
        return true;
      }
      case service::OpKind::kProfile: {
        obs::Profiler* profiler = svc_.params().profiler;
        if (profiler == nullptr) {
          // Same FIFO-alignment rule as flight_dump below: always answer
          // with a "profile" key, null when the sampler is off.
          write(service::encode_profile_response(request.client_id, "null"));
          return true;
        }
        obs::ProfileExportOptions opts;
        opts.source = "qulrb_serve";
        opts.hz = profiler->hz();
        opts.window_s = request.profile_seconds;
        obs::prof::Symbolizer symbolizer;
        write(service::encode_profile_response(
            request.client_id,
            obs::profile_to_json(profiler->snapshot(request.profile_seconds),
                                 symbolizer, opts)));
        return true;
      }
      case service::OpKind::kFlightDump: {
        obs::FlightRecorder* flight = svc_.params().flight;
        if (flight == nullptr) {
          // A "flight" key even when disabled: the router classifies
          // control responses by their top-level key, so an error-shaped
          // reply here would desync its per-connection FIFO.
          write(service::encode_flight_response(request.client_id, "null"));
          return true;
        }
        write(service::encode_flight_response(
            request.client_id,
            obs::flight_to_perfetto_json(*flight, request.window_s,
                                         request.flight_rid, "manual",
                                         "qulrb_serve")));
        return true;
      }
      case service::OpKind::kCancel: {
        std::uint64_t service_id = 0;
        {
          std::lock_guard<std::mutex> lock(map_mutex_);
          auto it = inflight_.find(request.client_id);
          if (it != inflight_.end()) service_id = it->second;
        }
        if (service_id == 0 || !svc_.cancel(service_id)) {
          write(service::encode_error("unknown or finished id", request.client_id));
        }
        return true;
      }
      case service::OpKind::kSolve: break;
    }

    const std::uint64_t client_id = request.client_id;
    const bool include_plan = request.include_plan;
    // `answered` guards the id map against the synchronous-rejection path:
    // the callback may run before submit() returns the service id.
    auto answered = std::make_shared<bool>(false);
    const std::uint64_t service_id = svc_.submit(
        std::move(request.request),
        [this, client_id, include_plan, answered](service::RebalanceResponse r) {
          {
            std::lock_guard<std::mutex> lock(map_mutex_);
            *answered = true;
            inflight_.erase(client_id);
          }
          write(service::encode_response(client_id, r, include_plan));
        });
    {
      std::lock_guard<std::mutex> lock(map_mutex_);
      if (!*answered) inflight_[client_id] = service_id;
    }
    return true;
  }

 private:
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_line_(line);
  }

  service::RebalanceService& svc_;
  std::function<void(const std::string&)> write_line_;
  std::atomic<bool>& shutdown_;
  std::mutex write_mutex_;
  std::mutex map_mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_;  ///< client -> service id
};

/// Graceful teardown shared by every exit path: optionally shed the backlog
/// (signal-driven exits — a client that asked for `shutdown` still gets its
/// queued answers), wait out in-flight solves, then flush the terminal
/// observability artifacts.
void shutdown_service(service::RebalanceService& svc,
                      const ServeOptions& options, bool shed_backlog) {
  const std::size_t shed = shed_backlog ? svc.shed_pending() : 0;
  svc.drain();
  if (!options.quiet && shed > 0) {
    std::cerr << "qulrb_serve: shed " << shed << " queued request(s)\n";
  }
  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out, std::ios::trunc);
    if (out) {
      out << svc.metrics_text();
    } else if (!options.quiet) {
      std::cerr << "qulrb_serve: cannot write " << options.metrics_out << "\n";
    }
  }
  if (!options.trace_out.empty()) {
    std::ofstream out(options.trace_out, std::ios::trunc);
    if (out) {
      const std::vector<std::string> traces =
          svc.last_traces(svc.params().trace_keep);
      out << "[";
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (i > 0) out << ",";
        out << "\n" << traces[i];
      }
      out << "\n]\n";
    } else if (!options.quiet) {
      std::cerr << "qulrb_serve: cannot write " << options.trace_out << "\n";
    }
  }
}

/// Read stdin line by line through poll() so SIGINT/SIGTERM and the
/// protocol's shutdown op are both noticed promptly — a blocked getline would
/// hold the drain hostage until the next newline arrived.
int run_stdio(service::RebalanceService& svc, const ServeOptions& options) {
  std::atomic<bool> shutdown{false};
  ProtocolSession session(
      svc, [](const std::string& line) { std::cout << line << "\n" << std::flush; },
      shutdown);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !shutdown.load(std::memory_order_relaxed) && !signalled()) {
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop condition decides
      break;
    }
    if (ready == 0) continue;  // timeout: re-check the flags
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF or error: treat as end of session
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty() && !session.handle_line(line)) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  shutdown_service(svc, options, signalled() != 0);
  return 0;
}

void send_all(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // a signal must not tear a response line
      return;  // EPIPE / timeout: peer gone or wedged; responses are best-effort
    }
    if (n == 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

void serve_connection(service::RebalanceService& svc, int fd,
                      std::atomic<bool>& shutdown) {
  // Bounded recv so the loop re-checks the shutdown flag and pending signals
  // even on an idle connection.
  struct timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // Bound sends too: a client that stops draining its socket (or a dying one
  // whose window never reopens) must not park a worker callback in send()
  // forever — after the timeout the response is dropped and the worker moves
  // on to requests whose clients are still alive.
  struct timeval snd_tv;
  snd_tv.tv_sec = 2;
  snd_tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_tv, sizeof(snd_tv));

  ProtocolSession session(
      svc, [fd](const std::string& line) { send_all(fd, line); }, shutdown);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !shutdown.load(std::memory_order_relaxed) && !signalled()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty() && !session.handle_line(line)) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  // Answer in-flight requests of this connection before closing the socket:
  // their callbacks write through fd.
  svc.drain();
  ::close(fd);
}

int run_tcp(service::RebalanceService& svc, const ServeOptions& options) {
  const int port = options.port;
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require(listen_fd >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  util::require(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "serve: bind() failed (port in use?)");
  util::require(::listen(listen_fd, 128) == 0, "serve: listen() failed");
  if (!options.quiet) {
    std::cerr << "qulrb_serve: listening on 127.0.0.1:" << port << "\n";
  }

  std::atomic<bool> shutdown{false};
  std::vector<std::thread> connections;
  // The shutdown op or a signal trips the flag; closing the listen socket
  // from the watcher unblocks accept() so the loop can exit.
  std::thread watcher([&] {
    while (!shutdown.load(std::memory_order_relaxed) && !signalled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  });

  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !signalled()) continue;
      break;  // listen socket closed by the watcher, or a shutdown signal
    }
    connections.emplace_back(
        [&svc, fd, &shutdown] { serve_connection(svc, fd, shutdown); });
  }
  shutdown.store(true, std::memory_order_relaxed);
  watcher.join();
  for (auto& t : connections) t.join();
  shutdown_service(svc, options, signalled() != 0);
  return 0;
}

int usage() {
  std::cerr << "usage: qulrb_serve [--port P] [--workers N] [--max-pending N]\n"
               "                   [--cache N] [--default-deadline-ms X]\n"
               "                   [--solver-threads N] [--trace N]\n"
               "                   [--metrics-out FILE] [--trace-out FILE]\n"
               "                   [--events-out FILE] [--events-max-mb X]\n"
               "                   [--no-flight] [--flight-capacity N]\n"
               "                   [--flight-window-s X] [--flight-dir DIR]\n"
               "                   [--slo-latency-ms X] [--slo-target X]\n"
               "                   [--slo-fast-s X] [--slo-slow-s X]\n"
               "                   [--slo-burn-threshold X]\n"
               "                   [--deadline-burst N] [--queue-hwm N]\n"
               "                   [--profile-hz N] [--profile-capacity N]\n"
               "                   [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        util::require(i + 1 < argc, "serve: missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--port") options.port = std::stoi(next());
      else if (arg == "--workers") options.service.num_workers = std::stoul(next());
      else if (arg == "--max-pending") options.service.max_pending = std::stoul(next());
      else if (arg == "--cache") options.service.cache_capacity = std::stoul(next());
      else if (arg == "--default-deadline-ms")
        options.service.default_deadline_ms = std::stod(next());
      else if (arg == "--solver-threads")
        options.service.solver_threads = std::stoul(next());
      else if (arg == "--trace") {
        options.service.record_traces = true;
        options.service.trace_keep = std::stoul(next());
      }
      else if (arg == "--metrics-out") options.metrics_out = next();
      else if (arg == "--trace-out") {
        options.trace_out = next();
        // A trace flush file implies tracing even without --trace.
        options.service.record_traces = true;
      }
      else if (arg == "--events-out") options.events_out = next();
      else if (arg == "--events-max-mb") options.events_max_mb = std::stod(next());
      else if (arg == "--no-flight") options.flight = false;
      else if (arg == "--flight-capacity")
        options.flight_capacity = std::stoul(next());
      else if (arg == "--flight-window-s")
        options.flight_window_s = std::stod(next());
      else if (arg == "--flight-dir") options.flight_dir = next();
      else if (arg == "--slo-latency-ms") options.slo_latency_ms = std::stod(next());
      else if (arg == "--slo-target") options.slo_target = std::stod(next());
      else if (arg == "--slo-fast-s") options.slo_fast_s = std::stod(next());
      else if (arg == "--slo-slow-s") options.slo_slow_s = std::stod(next());
      else if (arg == "--slo-burn-threshold")
        options.slo_burn_threshold = std::stod(next());
      else if (arg == "--deadline-burst")
        options.deadline_burst = std::stoull(next());
      else if (arg == "--queue-hwm") options.queue_hwm = std::stoul(next());
      else if (arg == "--profile-hz") options.profile_hz = std::stoi(next());
      else if (arg == "--profile-capacity")
        options.profile_capacity = std::stoul(next());
      else if (arg == "--quiet") options.quiet = true;
      else if (arg == "--help") return usage();
      else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        return 2;
      }
    }

    install_signal_handlers();

    std::optional<obs::EventLog> events;
    if (!options.events_out.empty()) {
      events.emplace(options.events_out, /*append=*/true,
                     static_cast<std::uint64_t>(options.events_max_mb *
                                                1024.0 * 1024.0));
      options.service.event_log = &*events;
      options.service.event_source = "qulrb_serve";
    }

    // Flight recorder, profiler and SLO engine outlive the service
    // (declared first; workers record into them until the service
    // destructs).
    std::optional<obs::FlightRecorder> flight;
    if (options.flight) {
      flight.emplace(options.flight_capacity);
      options.service.flight = &*flight;
    }
    std::optional<obs::Profiler> profiler;
    if (options.profile_hz > 0) {
      obs::Profiler::Params prof_params;
      prof_params.hz = options.profile_hz;
      prof_params.ring_capacity = options.profile_capacity;
      profiler.emplace(prof_params);
      if (profiler->start()) {
        options.service.profiler = &*profiler;
      } else if (!options.quiet) {
        std::cerr << "qulrb_serve: profiler failed to start; profiling off\n";
      }
    }
    obs::SloEngine::Params slo_params;
    slo_params.latency_slo_ms = options.slo_latency_ms;
    slo_params.target = options.slo_target;
    slo_params.fast_window_s = options.slo_fast_s;
    slo_params.slow_window_s = options.slo_slow_s;
    slo_params.burn_threshold = options.slo_burn_threshold;
    slo_params.deadline_burst = options.deadline_burst;
    slo_params.queue_hwm = options.queue_hwm;
    obs::SloEngine slo(
        slo_params, [&options, &flight, &profiler](const obs::SloTrigger& t) {
          // Anomaly trigger: snapshot the recent flight ring — and, when
          // the sampler is on, the matching CPU profile window — tagged
          // with the triggering request's rid, into --flight-dir.
          if (!options.quiet) {
            std::cerr << "qulrb_serve: trigger " << obs::to_string(t.kind)
                      << " (rid " << t.rid << "): " << t.detail << "\n";
          }
          if (options.flight_dir.empty()) return;
          const std::string suffix = std::to_string(t.rid) + "-" +
                                     obs::to_string(t.kind) + ".json";
          if (flight) {
            std::ofstream out(options.flight_dir + "/flight-" + suffix,
                              std::ios::trunc);
            if (out) {
              out << obs::flight_to_perfetto_json(
                         *flight, options.flight_window_s, t.rid,
                         obs::to_string(t.kind), "qulrb_serve")
                  << "\n";
            }
          }
          if (profiler && profiler->running()) {
            std::ofstream out(options.flight_dir + "/profile-" + suffix,
                              std::ios::trunc);
            if (out) {
              obs::ProfileExportOptions opts;
              opts.source = "qulrb_serve";
              opts.hz = profiler->hz();
              opts.window_s = options.flight_window_s;
              obs::prof::Symbolizer symbolizer;
              out << obs::profile_to_json(
                         profiler->snapshot(options.flight_window_s),
                         symbolizer, opts)
                  << "\n";
            }
          }
        });
    options.service.slo = &slo;

    service::RebalanceService svc(options.service);
    obs::register_build_info(
        svc.metrics_registry(),
        obs::build_info(
            anneal::simd::level_name(anneal::simd::active_level())),
        "serve");
    if (options.port > 0) return run_tcp(svc, options);
    return run_stdio(svc, options);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  }
}
