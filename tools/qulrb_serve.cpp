// qulrb_serve — JSON-lines rebalancing service front-end.
//
//   qulrb_serve [--port P] [--workers N] [--max-pending N] [--cache N]
//               [--default-deadline-ms X] [--solver-threads N]
//               [--trace N] [--quiet]
//
// --trace N records a Perfetto trace per request and keeps the last N for
// the {"op":"trace"} op; {"op":"metrics"} answers a Prometheus text scrape
// either way.
//
// Without --port, speaks the protocol on stdin/stdout (one JSON object per
// line; responses may arrive out of submission order). With --port, accepts
// TCP connections on 127.0.0.1:P, one protocol session per connection.
// {"op":"shutdown"} drains in-flight work and stops the whole server.
//
// See src/service/protocol.hpp for the line format.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/protocol.hpp"
#include "service/rebalance_service.hpp"
#include "util/error.hpp"

namespace {

using namespace qulrb;

struct ServeOptions {
  int port = 0;  ///< 0 = stdin/stdout mode
  service::ServiceParams service;
  bool quiet = false;
};

/// One protocol session: parses request lines, forwards them to the service,
/// and serialises response lines through a caller-provided writer. Thread
/// safe against the service's worker callbacks.
class ProtocolSession {
 public:
  ProtocolSession(service::RebalanceService& svc,
                  std::function<void(const std::string&)> write_line,
                  std::atomic<bool>& shutdown_flag)
      : svc_(svc), write_line_(std::move(write_line)), shutdown_(shutdown_flag) {}

  /// Handle one request line. Returns false when the session should end
  /// (shutdown requested).
  bool handle_line(const std::string& line) {
    service::ProtocolRequest request;
    try {
      request = service::parse_request_line(line);
    } catch (const std::exception& e) {
      write(service::encode_error(e.what(), 0));
      return true;
    }
    switch (request.op) {
      case service::OpKind::kShutdown:
        shutdown_.store(true, std::memory_order_relaxed);
        return false;
      case service::OpKind::kStats:
        write(service::encode_stats(svc_.stats()));
        return true;
      case service::OpKind::kMetrics:
        write(service::encode_metrics(svc_.metrics_text()));
        return true;
      case service::OpKind::kTrace:
        write(service::encode_traces(svc_.last_traces(request.trace_count)));
        return true;
      case service::OpKind::kCancel: {
        std::uint64_t service_id = 0;
        {
          std::lock_guard<std::mutex> lock(map_mutex_);
          auto it = inflight_.find(request.client_id);
          if (it != inflight_.end()) service_id = it->second;
        }
        if (service_id == 0 || !svc_.cancel(service_id)) {
          write(service::encode_error("unknown or finished id", request.client_id));
        }
        return true;
      }
      case service::OpKind::kSolve: break;
    }

    const std::uint64_t client_id = request.client_id;
    const bool include_plan = request.include_plan;
    // `answered` guards the id map against the synchronous-rejection path:
    // the callback may run before submit() returns the service id.
    auto answered = std::make_shared<bool>(false);
    const std::uint64_t service_id = svc_.submit(
        std::move(request.request),
        [this, client_id, include_plan, answered](service::RebalanceResponse r) {
          {
            std::lock_guard<std::mutex> lock(map_mutex_);
            *answered = true;
            inflight_.erase(client_id);
          }
          write(service::encode_response(client_id, r, include_plan));
        });
    {
      std::lock_guard<std::mutex> lock(map_mutex_);
      if (!*answered) inflight_[client_id] = service_id;
    }
    return true;
  }

 private:
  void write(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    write_line_(line);
  }

  service::RebalanceService& svc_;
  std::function<void(const std::string&)> write_line_;
  std::atomic<bool>& shutdown_;
  std::mutex write_mutex_;
  std::mutex map_mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_;  ///< client -> service id
};

int run_stdio(service::RebalanceService& svc) {
  std::atomic<bool> shutdown{false};
  ProtocolSession session(
      svc, [](const std::string& line) { std::cout << line << "\n" << std::flush; },
      shutdown);
  std::string line;
  while (!shutdown.load(std::memory_order_relaxed) && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!session.handle_line(line)) break;
  }
  svc.drain();  // answer everything already admitted before exiting
  return 0;
}

void send_all(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; responses are best-effort
    sent += static_cast<std::size_t>(n);
  }
}

void serve_connection(service::RebalanceService& svc, int fd,
                      std::atomic<bool>& shutdown) {
  ProtocolSession session(
      svc, [fd](const std::string& line) { send_all(fd, line); }, shutdown);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !shutdown.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty() && !session.handle_line(line)) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  // Answer in-flight requests of this connection before closing the socket:
  // their callbacks write through fd.
  svc.drain();
  ::close(fd);
}

int run_tcp(service::RebalanceService& svc, int port, bool quiet) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require(listen_fd >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  util::require(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "serve: bind() failed (port in use?)");
  util::require(::listen(listen_fd, 128) == 0, "serve: listen() failed");
  if (!quiet) {
    std::cerr << "qulrb_serve: listening on 127.0.0.1:" << port << "\n";
  }

  std::atomic<bool> shutdown{false};
  std::vector<std::thread> connections;
  // The shutdown op trips the flag; closing the listen socket from a watcher
  // unblocks accept() so the loop can exit.
  std::thread watcher([&] {
    while (!shutdown.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  });

  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listen socket closed by the watcher
    connections.emplace_back(
        [&svc, fd, &shutdown] { serve_connection(svc, fd, shutdown); });
  }
  shutdown.store(true, std::memory_order_relaxed);
  watcher.join();
  for (auto& t : connections) t.join();
  svc.drain();
  return 0;
}

int usage() {
  std::cerr << "usage: qulrb_serve [--port P] [--workers N] [--max-pending N]\n"
               "                   [--cache N] [--default-deadline-ms X]\n"
               "                   [--solver-threads N] [--trace N] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        util::require(i + 1 < argc, "serve: missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--port") options.port = std::stoi(next());
      else if (arg == "--workers") options.service.num_workers = std::stoul(next());
      else if (arg == "--max-pending") options.service.max_pending = std::stoul(next());
      else if (arg == "--cache") options.service.cache_capacity = std::stoul(next());
      else if (arg == "--default-deadline-ms")
        options.service.default_deadline_ms = std::stod(next());
      else if (arg == "--solver-threads")
        options.service.solver_threads = std::stoul(next());
      else if (arg == "--trace") {
        options.service.record_traces = true;
        options.service.trace_keep = std::stoul(next());
      }
      else if (arg == "--quiet") options.quiet = true;
      else if (arg == "--help") return usage();
      else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        return 2;
      }
    }

    service::RebalanceService svc(options.service);
    if (options.port > 0) return run_tcp(svc, options.port, options.quiet);
    return run_stdio(svc);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  }
}
