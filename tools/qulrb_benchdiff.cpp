// qulrb_benchdiff — noise-aware benchmark regression gate over the repo's
// committed BENCH_*.json baselines.
//
//   qulrb_benchdiff BASELINE.json CANDIDATE.json [CANDIDATE2.json ...]
//                   [--threshold PCT | --threshold NAME=PCT]...
//                   [--min-time-ns NS] [--report out.json] [--quiet]
//
// The candidate time per benchmark is the minimum across all candidate
// documents (min-of-N: the minimum of repeated latency measurements
// estimates the noise-free cost), and the gate is relative — a benchmark
// regresses when min-candidate > baseline * (1 + PCT/100). `--threshold`
// without a name sets the global bar; with NAME=PCT it overrides one
// benchmark. Baselines faster than --min-time-ns are reported but never
// gate.
//
// Exit codes (CI branches on these):
//   0  no regression
//   1  at least one benchmark regressed
//   2  usage error
//   3  malformed input (unreadable file, no benchmark times found)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "io/json_value.hpp"
#include "obs/benchdiff.hpp"
#include "util/error.hpp"

namespace {

using namespace qulrb;

int usage() {
  std::cerr
      << "usage: qulrb_benchdiff BASELINE.json CANDIDATE.json [MORE.json...]\n"
         "                       [--threshold PCT | --threshold NAME=PCT]...\n"
         "                       [--min-time-ns NS] [--report out.json |\n"
         "                       --json-out out.json] [--quiet]\n";
  return 2;
}

io::JsonValue load_json(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return io::JsonValue::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  obs::BenchDiffOptions options;
  std::string report_path;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        util::require(i + 1 < argc, "missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--threshold") {
        const std::string value = next();
        const std::size_t eq = value.find('=');
        if (eq == std::string::npos) {
          options.threshold_pct = std::stod(value);
        } else {
          options.per_benchmark_pct[value.substr(0, eq)] =
              std::stod(value.substr(eq + 1));
        }
      } else if (arg == "--min-time-ns") {
        options.min_time_ns = std::stod(next());
      } else if (arg == "--report" || arg == "--json-out") {
        // --json-out is the CI-facing spelling; both write the same
        // machine-readable comparison document.
        report_path = next();
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help") {
        return usage();
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "error: unknown option '" << arg << "'\n";
        return 2;
      } else {
        files.push_back(arg);
      }
    }
    if (files.size() < 2) return usage();

    const io::JsonValue baseline = load_json(files[0]);
    std::vector<io::JsonValue> candidates;
    for (std::size_t i = 1; i < files.size(); ++i) {
      candidates.push_back(load_json(files[i]));
    }

    const obs::BenchDiffReport report =
        obs::bench_diff(baseline, candidates, options);
    if (!quiet) std::cout << report.to_text();
    if (!report_path.empty()) {
      std::ofstream out(report_path, std::ios::trunc);
      util::require(out.good(), "cannot write " + report_path);
      out << report.to_json() << "\n";
    }
    return report.has_regression() ? 1 : 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  }
}
