// qulrb — command-line rebalancer, the C++ counterpart of the paper
// repository's run_*.sh scripts:
//
//   qulrb solve   --input input_lrp.csv --solver qcqm1 [--k N | --k2]
//                 [--output out.csv] [--seed S] [--sweeps N] [--restarts N]
//                 [--trace-out trace.json] [--metrics-out metrics.prom]
//                 [--events-out events.jsonl] [--target-rimb R]
//                 [--profile-out solve.folded] [--profile-hz N]
//   qulrb compare --input input_lrp.csv [--seed S]
//   qulrb gen     --scenario samoa|imb0..imb4|nodes<M>|tasks<N> --output in.csv
//   qulrb solvers
//
// Input/output files use the paper's Appendix-B CSV formats (Tables VI/VII).
//
// Exit codes (scripts branch on these):
//   0  success
//   2  usage error (unknown command / missing operands)
//   3  invalid input (malformed file, bad option value, unknown solver)
//   4  solve failed or produced an infeasible result

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "io/lrp_io.hpp"
#include "obs/convergence.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profile_export.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_context.hpp"
#include "io/report.hpp"
#include "lrp/kselect.hpp"
#include "lrp/metrics.hpp"
#include "lrp/registry.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/samoa.hpp"
#include "workloads/scenarios.hpp"

namespace {

using namespace qulrb;

constexpr int kExitUsage = 2;
constexpr int kExitInvalidInput = 3;
constexpr int kExitSolveFailed = 4;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = {}) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw util::InvalidArgument("unexpected argument '" + key + "'");
    }
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  qulrb solve   --input in.csv --solver NAME [--k N | --k2] "
      "[--output out.csv]\n"
      "                [--seed S] [--sweeps N] [--restarts N]\n"
      "                [--trace-out trace.json] [--metrics-out metrics.prom]\n"
      "                [--events-out events.jsonl] [--target-rimb R]\n"
      "                [--profile-out solve.folded] [--profile-hz N]\n"
      "  qulrb compare --input in.csv [--seed S] [--json out.json]\n"
      "  qulrb gen     --scenario samoa|imb0..imb4|nodesM|tasksN --output in.csv\n"
      "  qulrb solvers\n";
  return kExitUsage;
}

lrp::SolverSpec spec_from_args(const Args& args) {
  lrp::SolverSpec spec;
  spec.name = args.get("solver");
  if (args.has("k")) spec.k = std::stoll(args.get("k"));
  spec.relaxed_k = args.has("k2");
  if (args.has("seed")) spec.seed = std::stoull(args.get("seed"));
  if (args.has("sweeps")) spec.sweeps = std::stoull(args.get("sweeps"));
  if (args.has("restarts")) spec.restarts = std::stoull(args.get("restarts"));
  return spec;
}

void print_report(const lrp::LrpProblem& problem, const lrp::SolverReport& report) {
  util::Table table({"Metric", "Value"});
  table.add_row({"algorithm", report.name});
  table.add_row({"R_imb before", util::Table::num(report.metrics.imbalance_before, 5)});
  table.add_row({"R_imb after", util::Table::num(report.metrics.imbalance_after, 5)});
  table.add_row({"speedup", util::Table::num(report.metrics.speedup, 4)});
  table.add_row({"migrated tasks", util::Table::integer(report.metrics.total_migrated)});
  table.add_row({"of total tasks", util::Table::integer(problem.total_tasks())});
  table.add_row({"cpu (ms)", util::Table::num(report.output.cpu_ms, 3)});
  if (report.output.qpu_ms > 0.0) {
    table.add_row({"sim. qpu (ms)", util::Table::num(report.output.qpu_ms, 1)});
  }
  table.print(std::cout);
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  util::require(out.good(), "cannot open " + path + " for writing");
  out << text;
  util::require(out.good(), "write to " + path + " failed");
}

int cmd_solve(const Args& args) {
  util::require(args.has("input") && args.has("solver"),
                "solve: --input and --solver are required");
  const lrp::LrpProblem problem = io::read_input_file(args.get("input"));
  lrp::SolverSpec spec = spec_from_args(args);

  // Observability sinks are opt-in and consume no RNG: the solve is
  // bitwise-identical with or without them. The convergence telemetry
  // (--events-out, --target-rimb) reads the recorder's incumbent timelines,
  // so either flag implies recording even without --trace-out.
  const bool want_recorder = args.has("trace-out") || args.has("events-out") ||
                             args.has("target-rimb");
  std::shared_ptr<obs::Recorder> recorder;
  obs::TraceContext trace;
  std::optional<obs::MetricsRegistry> metrics;
  if (want_recorder) {
    recorder = std::make_shared<obs::Recorder>("qulrb solve " + spec.name);
    recorder->annotate("input", args.get("input"));
    // Request id 1: one CLI invocation is one request.
    trace = obs::TraceContext::adopt(1, recorder);
    spec.recorder = recorder.get();
    spec.trace = trace;
  }
  if (args.has("metrics-out")) {
    metrics.emplace();
    spec.metrics = &*metrics;
  }
  // One-shot CPU profile of this solve: sample for the whole run, write
  // folded stacks on the way out (profiling consumes no RNG either — the
  // plan is bitwise-identical with or without it).
  std::optional<obs::Profiler> profiler;
  if (args.has("profile-out")) {
    obs::Profiler::Params prof_params;
    if (args.has("profile-hz")) {
      prof_params.hz = std::stoi(args.get("profile-hz"));
    }
    profiler.emplace(prof_params);
    if (!profiler->start()) {
      std::cerr << "warning: could not start the CPU profiler; "
                   "--profile-out will hold no samples\n";
    }
  }

  const auto solver = lrp::make_solver(spec, problem);
  const lrp::SolverReport report = lrp::run_and_evaluate(*solver, problem);
  if (profiler.has_value()) profiler->stop();
  print_report(problem, report);

  obs::ConvergenceReport convergence;
  if (recorder != nullptr) {
    obs::ConvergenceConfig conv;
    if (args.has("target-rimb")) {
      conv.target_objective = lrp::objective_target_for_imbalance(
          problem, std::stod(args.get("target-rimb")));
    }
    convergence = obs::ConvergenceDiagnostics(conv).annotate(*recorder);
    if (convergence.reached_feasible()) {
      std::cout << "time to first feasible: "
                << convergence.time_to_first_feasible_ms << " ms\n";
    }
    if (convergence.reached_target()) {
      std::cout << "time to target R_imb:   " << convergence.time_to_target_ms
                << " ms\n";
    }
  }

  if (args.has("output")) {
    io::write_output_file(args.get("output"), problem, report.output.plan);
    std::cout << "wrote " << args.get("output") << "\n";
  }
  if (args.has("trace-out")) {
    write_text_file(args.get("trace-out"), obs::to_perfetto_json(*recorder));
    std::cout << "wrote " << args.get("trace-out") << "\n";
  }
  if (metrics.has_value()) {
    obs::ProcessMetrics(*metrics).update();
    write_text_file(args.get("metrics-out"), metrics->to_prometheus());
    std::cout << "wrote " << args.get("metrics-out") << "\n";
  }
  if (profiler.has_value()) {
    const std::vector<obs::ProfileSample> samples = profiler->snapshot(0.0);
    obs::prof::Symbolizer symbolizer;
    obs::ProfileExportOptions opts;
    opts.source = "qulrb";
    opts.hz = profiler->hz();
    write_text_file(args.get("profile-out"),
                    obs::profile_to_folded(samples, symbolizer, opts));
    std::cout << "wrote " << args.get("profile-out") << " (" << samples.size()
              << " samples)\n";
  }
  if (args.has("events-out")) {
    obs::EventLog events(args.get("events-out"), /*append=*/true);
    obs::SolveEvent event;
    event.source = "qulrb_solve";
    event.request_id = 1;
    event.solver = report.name;
    event.outcome = report.output.feasible ? "ok" : "infeasible";
    event.feasible = report.output.feasible;
    event.r_imb_before = report.metrics.imbalance_before;
    event.r_imb_after = report.metrics.imbalance_after;
    event.speedup = report.metrics.speedup;
    event.migrated = report.metrics.total_migrated;
    event.runtime_ms = report.output.cpu_ms;
    if (convergence.reached_feasible()) {
      event.time_to_first_feasible_ms = convergence.time_to_first_feasible_ms;
    }
    if (convergence.reached_target()) {
      event.time_to_target_ms = convergence.time_to_target_ms;
    }
    event.extra.emplace_back("input", args.get("input"));
    events.log(event);
    std::cout << "wrote " << args.get("events-out") << "\n";
  }
  if (!report.output.feasible) {
    std::cerr << "error: solver '" << report.name
              << "' did not reach a feasible solution";
    if (!report.output.notes.empty()) std::cerr << " (" << report.output.notes << ")";
    std::cerr << "\n";
    return kExitSolveFailed;
  }
  return 0;
}

int cmd_compare(const Args& args) {
  util::require(args.has("input"), "compare: --input is required");
  const lrp::LrpProblem problem = io::read_input_file(args.get("input"));
  std::vector<lrp::SolverReport> reports;
  const lrp::KSelection k = lrp::select_k(problem);
  std::cout << "baseline R_imb = " << problem.imbalance_ratio() << ", k1 = " << k.k1
            << ", k2 = " << k.k2 << "\n\n";

  util::Table table({"Algorithm", "R_imb", "Speedup", "# mig.", "CPU (ms)"});
  const struct {
    const char* name;
    bool relaxed;
  } runs[] = {{"greedy", false}, {"kk", false},    {"proactlb", false},
              {"qcqm1", false},  {"qcqm1", true},  {"qcqm2", false},
              {"qcqm2", true}};
  for (const auto& run : runs) {
    lrp::SolverSpec spec;
    spec.name = run.name;
    spec.relaxed_k = run.relaxed;
    if (args.has("seed")) spec.seed = std::stoull(args.get("seed"));
    const auto solver = lrp::make_solver(spec, problem);
    lrp::SolverReport report = lrp::run_and_evaluate(*solver, problem);
    if (std::string(run.name).rfind("qcqm", 0) == 0) {
      report.name += run.relaxed ? "_k2" : "_k1";
    }
    table.add_row({report.name, util::Table::num(report.metrics.imbalance_after, 5),
                   util::Table::num(report.metrics.speedup, 4),
                   util::Table::integer(report.metrics.total_migrated),
                   util::Table::num(report.output.cpu_ms, 2)});
    reports.push_back(std::move(report));
  }
  table.print(std::cout);
  if (args.has("json")) {
    const auto record = io::make_record(args.get("input"), problem, std::move(reports));
    io::write_json_file(args.get("json"), io::to_json(record));
    std::cout << "wrote " << args.get("json") << "\n";
  }
  return 0;
}

int cmd_gen(const Args& args) {
  util::require(args.has("scenario") && args.has("output"),
                "gen: --scenario and --output are required");
  const std::string name = args.get("scenario");
  std::optional<lrp::LrpProblem> problem;
  if (name == "samoa") {
    problem = workloads::scenarios::samoa_oscillating_lake().problem;
  } else if (name.rfind("imb", 0) == 0) {
    const auto level = static_cast<std::size_t>(std::stoul(name.substr(3)));
    const auto levels = workloads::scenarios::imbalance_levels();
    util::require(level < levels.size(), "gen: imbalance level out of range");
    problem = levels[level].problem;
  } else if (name.rfind("nodes", 0) == 0) {
    problem = workloads::scenarios::node_scaling(std::stoul(name.substr(5))).problem;
  } else if (name.rfind("tasks", 0) == 0) {
    problem = workloads::scenarios::task_scaling(std::stoll(name.substr(5))).problem;
  } else {
    throw util::InvalidArgument("gen: unknown scenario '" + name + "'");
  }
  io::write_input_file(args.get("output"), *problem);
  std::cout << "wrote " << args.get("output") << " (M = " << problem->num_processes()
            << ", n = " << problem->tasks_on(0)
            << ", R_imb = " << problem->imbalance_ratio() << ")\n";
  return 0;
}

int cmd_solvers() {
  for (const auto& name : lrp::solver_names()) std::cout << name << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "solve") return cmd_solve(args);
    if (args.command == "compare") return cmd_compare(args);
    if (args.command == "gen") return cmd_gen(args);
    if (args.command == "solvers") return cmd_solvers();
    return usage();
  } catch (const util::InvalidArgument& error) {
    // Bad file contents, malformed option values, unknown solver names.
    std::cerr << "error: " << error.what() << "\n";
    return kExitInvalidInput;
  } catch (const std::invalid_argument& error) {
    // std::stoll and friends on non-numeric option values.
    std::cerr << "error: invalid option value: " << error.what() << "\n";
    return kExitInvalidInput;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return kExitSolveFailed;
  }
}
