// qulrb_loadgen — load generator and latency reporter for the rebalancing
// service.
//
//   qulrb_loadgen [--requests N] [--concurrency C] [--m M] [--n N] [--k K]
//                 [--variant qcqm1|qcqm2] [--sweeps S] [--restarts R]
//                 [--deadline-ms X] [--drift] [--topo-zipf S] [--seed S]
//                 [--workers W] [--cache C] [--rate R]
//                 [--connect PORT] [--targets HOST:PORT,...]
//                 [--priority-classes N] [--label NAME] [--json FILE]
//
// Default is closed-loop against an in-process RebalanceService: C client
// threads each keep exactly one request outstanding. --rate R switches to
// open-loop (fixed R requests/sec regardless of completions — the honest way
// to measure queueing behaviour). --connect PORT runs the closed loop over
// TCP against a running `qulrb_serve --port PORT` or `qulrb_router`, one
// connection per client thread; --targets spreads the client threads
// round-robin over several servers (the "no router" baseline for the sharded
// tier). --drift varies the load vector per request (exercising the session
// cache's retarget path instead of exact hits). --topo-zipf S draws each
// request's topology from a 16-member universe with Zipf(S) popularity —
// skewed topology traffic is what separates cache-affinity routing from
// random placement. --label tags the --json summary so per-policy runs can
// be told apart downstream.
//
// Reports throughput and client-observed p50/p95/p99 latency. --json FILE
// additionally writes a machine-readable summary including the full
// log-bucketed latency histogram (the same obs::LogHistogram layout the
// service's Prometheus metrics use). --priority-classes N cycles request
// priority over N classes (request #seq gets priority seq % N) and the
// summary reports one quantiles+histogram entry per class under "classes"
// — per-class latency is what the server-side SLO engine pages on, so the
// client view must be sliced the same way.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "io/json_value.hpp"
#include "obs/metrics.hpp"
#include "router/backend_pool.hpp"
#include "router/policy.hpp"
#include "service/protocol.hpp"
#include "service/rebalance_service.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace qulrb;

struct LoadgenOptions {
  std::size_t requests = 2000;
  std::size_t concurrency = 8;
  std::size_t m = 8;            ///< processes
  std::int64_t n = 8;           ///< tasks per process
  std::int64_t k = 8;
  lrp::CqmVariant variant = lrp::CqmVariant::kReduced;
  std::size_t sweeps = 50;
  std::size_t restarts = 1;
  double deadline_ms = 0.0;
  bool drift = false;
  double topo_zipf = 0.0;  ///< Zipf exponent for topology popularity; 0 = off
  std::uint64_t seed = 1;
  // In-process service shape.
  std::size_t workers = 0;
  std::size_t cache = 16;
  double rate = 0.0;  ///< open-loop requests/sec (in-process only); 0 = closed
  /// TCP servers; client threads spread round-robin. Empty = in-process.
  std::vector<router::BackendAddress> targets;
  /// Priority classes cycled over the request stream (request #seq gets
  /// priority seq % N). 1 = everything priority 0, the old behaviour.
  std::size_t priority_classes = 1;
  std::string label;     ///< tag echoed into the --json summary
  std::string json_out;  ///< machine-readable summary file ("" = none)
};

/// Topology universe for --topo-zipf: each member gets a distinct task-count
/// vector (so distinct SessionCache keys) with Zipf(S) popularity.
constexpr std::size_t kTopoUniverse = 16;

/// Zipf(S)-distributed topology id for request #seq — deterministic in
/// (seed, seq) so runs are reproducible and every policy sees the same
/// request stream.
std::size_t zipf_topology(const LoadgenOptions& options, std::uint64_t seq) {
  static thread_local std::vector<double> cdf;
  if (cdf.empty()) {
    cdf.resize(kTopoUniverse);
    double total = 0.0;
    for (std::size_t r = 0; r < kTopoUniverse; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), options.topo_zipf);
      cdf[r] = total;
    }
    for (double& c : cdf) c /= total;
  }
  const double u = static_cast<double>(
                       router::mix64(options.seed * 0x9e37u + seq) >> 11) *
                   0x1.0p-53;
  for (std::size_t r = 0; r < kTopoUniverse; ++r) {
    if (u <= cdf[r]) return r;
  }
  return kTopoUniverse - 1;
}

/// Request #seq of the workload: one hot process, the rest uniform. With
/// drift the hot slot rotates and its weight wobbles, so consecutive
/// requests share a topology but not a load vector.
service::RebalanceRequest make_request(const LoadgenOptions& options,
                                       std::uint64_t seq) {
  service::RebalanceRequest request;
  request.task_counts.assign(options.m, options.n);
  request.task_loads.assign(options.m, 1.0);
  std::size_t hot = options.drift ? seq % options.m : 0;
  if (options.topo_zipf > 0.0) {
    // Distinct topology per universe member: bump one slot's task count so
    // the SessionCache (and cache-affinity routing) key differs per member.
    const std::size_t topo = zipf_topology(options, seq);
    request.task_counts[topo % options.m] +=
        1 + static_cast<std::int64_t>(topo / options.m);
    hot = (hot + topo) % options.m;
  }
  const double wobble =
      options.drift ? 0.05 * static_cast<double>(seq % 17) : 0.0;
  request.task_loads[hot] = 8.0 + wobble;
  request.variant = options.variant;
  request.k = options.k;
  request.deadline_ms = options.deadline_ms;
  if (options.priority_classes > 1) {
    request.priority = static_cast<int>(seq % options.priority_classes);
  }
  request.hybrid.sweeps = options.sweeps;
  request.hybrid.num_restarts = options.restarts;
  request.hybrid.seed = options.seed + seq;
  return request;
}

struct Tally {
  /// Per-priority-class slice of the run — the --json summary reports one
  /// histogram per class, not just the global blend (a tight p99 SLO on the
  /// high class is invisible in a blended histogram).
  struct PerClass {
    std::vector<double> latencies_ms;
    obs::LogHistogram hist;
  };

  explicit Tally(std::size_t classes) {
    per_class.reserve(classes == 0 ? 1 : classes);
    for (std::size_t c = 0; c < (classes == 0 ? 1 : classes); ++c) {
      per_class.push_back(std::make_unique<PerClass>());
    }
  }

  std::mutex mutex;
  std::vector<double> latencies_ms;
  obs::LogHistogram hist;  ///< same log-bucketed layout as the service metrics
  std::vector<std::unique_ptr<PerClass>> per_class;
  std::uint64_t ok = 0, rejected = 0, shed = 0, cancelled = 0, failed = 0;

  void record(int priority, const std::string& outcome, double ms) {
    hist.observe(ms);
    PerClass& pc =
        *per_class[static_cast<std::size_t>(priority < 0 ? 0 : priority) %
                   per_class.size()];
    pc.hist.observe(ms);
    std::lock_guard<std::mutex> lock(mutex);
    latencies_ms.push_back(ms);
    pc.latencies_ms.push_back(ms);
    if (outcome == "ok") ++ok;
    else if (outcome == "rejected") ++rejected;
    else if (outcome == "shed") ++shed;
    else if (outcome == "cancelled") ++cancelled;
    else ++failed;
  }
};

void report(const Tally& tally, double wall_seconds, const std::string& cache_line) {
  std::vector<double> xs = tally.latencies_ms;
  const double total = static_cast<double>(xs.size());
  std::cout << "requests:    " << xs.size() << " in " << wall_seconds << " s  ("
            << (wall_seconds > 0.0 ? total / wall_seconds : 0.0) << " req/s)\n";
  if (!xs.empty()) {
    std::cout << "latency ms:  p50 " << util::quantile(xs, 0.50) << "  p95 "
              << util::quantile(xs, 0.95) << "  p99 " << util::quantile(xs, 0.99)
              << "  mean " << util::mean(xs) << "  max "
              << *std::max_element(xs.begin(), xs.end()) << "\n";
  }
  std::cout << "outcomes:    ok " << tally.ok << "  rejected " << tally.rejected
            << "  shed " << tally.shed << "  cancelled " << tally.cancelled
            << "  failed " << tally.failed << "\n";
  if (!cache_line.empty()) std::cout << cache_line << "\n";
}

/// Server-side SessionCache totals pulled after a run — summed across every
/// target (and, through a router, across its whole backend fleet).
struct ServerCache {
  bool present = false;
  std::int64_t exact = 0;
  std::int64_t retarget = 0;
  std::int64_t miss = 0;

  void add(const io::JsonValue& cache) {
    present = true;
    exact += cache.int_or("exact_hits", 0);
    retarget += cache.int_or("retarget_hits", 0);
    miss += cache.int_or("misses", 0);
  }

  void add_counts(std::uint64_t e, std::uint64_t r, std::uint64_t m) {
    present = true;
    exact += static_cast<std::int64_t>(e);
    retarget += static_cast<std::int64_t>(r);
    miss += static_cast<std::int64_t>(m);
  }

  double hit_rate() const {
    const std::int64_t total = exact + retarget + miss;
    return total > 0
               ? static_cast<double>(exact + retarget) / static_cast<double>(total)
               : 0.0;
  }
};

/// Emit one log-bucketed histogram object (cumulative `le` edges,
/// Prometheus-style) — shared by the global and per-class summaries.
void write_histogram_json(io::JsonWriter& w, const obs::LogHistogram& hist) {
  w.begin_object();
  w.field("count", hist.count());
  w.field("sum_ms", hist.sum());
  w.key("buckets");
  w.begin_array();
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist.num_buckets(); ++b) {
    cumulative += hist.bucket_count(b);
    w.begin_object();
    w.field("le_ms", hist.upper_edge(b));
    w.field("count", cumulative);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_quantiles_json(io::JsonWriter& w, const std::vector<double>& xs) {
  w.begin_object();
  w.field("mean", util::mean(xs));
  w.field("p50", util::quantile(xs, 0.50));
  w.field("p95", util::quantile(xs, 0.95));
  w.field("p99", util::quantile(xs, 0.99));
  w.field("max", *std::max_element(xs.begin(), xs.end()));
  w.end_object();
}

/// Wall-clock (unix epoch) seconds — the post-hoc alignment key between a
/// loadgen run and profile/flight captures taken during it.
double unix_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The run's wall-clock window, stamped once at the run boundaries.
struct RunWindow {
  double start_ts = 0.0;  ///< unix seconds at first request submission
  double end_ts = 0.0;    ///< unix seconds after the last response
};

/// Machine-readable run summary: outcomes, exact quantiles from the raw
/// sample vector, the full log-bucketed global histogram, and one
/// quantiles+histogram entry per priority class under "classes". Every
/// block carries the run's start_ts/end_ts window so external captures
/// (fleet profiles, flight dumps) can be aligned with it post-hoc.
void write_json_summary(const std::string& path, const Tally& tally,
                        double wall_seconds, const std::string& label,
                        const ServerCache& cache, const RunWindow& window) {
  std::vector<double> xs = tally.latencies_ms;
  io::JsonWriter w;
  w.begin_object();
  if (!label.empty()) w.field("label", label);
  w.field("requests", xs.size());
  w.field("wall_seconds", wall_seconds);
  w.field("start_ts", window.start_ts);
  w.field("end_ts", window.end_ts);
  w.field("throughput_rps",
          wall_seconds > 0.0 ? static_cast<double>(xs.size()) / wall_seconds : 0.0);
  w.key("outcomes");
  w.begin_object();
  w.field("ok", tally.ok);
  w.field("rejected", tally.rejected);
  w.field("shed", tally.shed);
  w.field("cancelled", tally.cancelled);
  w.field("failed", tally.failed);
  w.end_object();
  if (cache.present) {
    w.key("server_cache");
    w.begin_object();
    w.field("exact_hits", cache.exact);
    w.field("retarget_hits", cache.retarget);
    w.field("misses", cache.miss);
    w.field("hit_rate", cache.hit_rate());
    w.end_object();
  }
  if (!xs.empty()) {
    w.key("latency_ms");
    write_quantiles_json(w, xs);
  }
  w.key("histogram");
  write_histogram_json(w, tally.hist);
  w.key("classes");
  w.begin_array();
  for (std::size_t c = 0; c < tally.per_class.size(); ++c) {
    const Tally::PerClass& pc = *tally.per_class[c];
    w.begin_object();
    w.field("priority", c);
    w.field("requests", pc.latencies_ms.size());
    w.field("start_ts", window.start_ts);
    w.field("end_ts", window.end_ts);
    if (!pc.latencies_ms.empty()) {
      w.key("latency_ms");
      write_quantiles_json(w, pc.latencies_ms);
    }
    w.key("histogram");
    write_histogram_json(w, pc.hist);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  util::require(out.good(), "loadgen: cannot open " + path);
  out << w.str() << "\n";
}

std::string cache_line_from(const service::ServiceStats& stats) {
  return "cache:       exact " + std::to_string(stats.cache.exact_hits) +
         "  retarget " + std::to_string(stats.cache.retarget_hits) + "  miss " +
         std::to_string(stats.cache.misses) + "  ewma_solve_ms " +
         std::to_string(stats.ewma_solve_ms);
}

int run_inproc_closed(const LoadgenOptions& options) {
  service::ServiceParams params;
  params.num_workers = options.workers;
  params.cache_capacity = options.cache;
  service::RebalanceService svc(params);

  Tally tally(options.priority_classes);
  std::atomic<std::uint64_t> next_seq{0};
  RunWindow window;
  window.start_ts = unix_now_s();
  util::WallTimer wall;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < options.concurrency; ++c) {
    clients.emplace_back([&] {
      while (true) {
        const std::uint64_t seq = next_seq.fetch_add(1);
        if (seq >= options.requests) return;
        service::RebalanceRequest request = make_request(options, seq);
        const int priority = request.priority;
        util::WallTimer timer;
        auto future = svc.submit(std::move(request));
        const service::RebalanceResponse response = future.get();
        tally.record(priority, service::to_string(response.outcome),
                     timer.elapsed_ms());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double seconds = wall.elapsed_seconds();
  window.end_ts = unix_now_s();
  const service::ServiceStats stats = svc.stats();
  report(tally, seconds, cache_line_from(stats));
  if (!options.json_out.empty()) {
    ServerCache cache;
    cache.add_counts(stats.cache.exact_hits, stats.cache.retarget_hits,
                     stats.cache.misses);
    write_json_summary(options.json_out, tally, seconds, options.label, cache,
                       window);
  }
  return 0;
}

int run_inproc_open(const LoadgenOptions& options) {
  service::ServiceParams params;
  params.num_workers = options.workers;
  params.cache_capacity = options.cache;
  service::RebalanceService svc(params);

  Tally tally(options.priority_classes);
  RunWindow window;
  window.start_ts = unix_now_s();
  util::WallTimer wall;
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / options.rate));
  auto next_tick = std::chrono::steady_clock::now();
  for (std::uint64_t seq = 0; seq < options.requests; ++seq) {
    std::this_thread::sleep_until(next_tick);
    next_tick += interval;
    const auto submitted = std::chrono::steady_clock::now();
    service::RebalanceRequest request = make_request(options, seq);
    const int priority = request.priority;
    svc.submit(std::move(request),
               [&tally, submitted, priority](service::RebalanceResponse response) {
                 const double ms =
                     std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - submitted)
                         .count();
                 tally.record(priority, service::to_string(response.outcome), ms);
               });
  }
  svc.drain();
  const double seconds = wall.elapsed_seconds();
  window.end_ts = unix_now_s();
  const service::ServiceStats stats = svc.stats();
  report(tally, seconds, cache_line_from(stats));
  if (!options.json_out.empty()) {
    ServerCache cache;
    cache.add_counts(stats.cache.exact_hits, stats.cache.retarget_hits,
                     stats.cache.misses);
    write_json_summary(options.json_out, tally, seconds, options.label, cache,
                       window);
  }
  return 0;
}

int connect_to(const router::BackendAddress& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require(fd >= 0, "loadgen: socket() failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(target.port));
  util::require(::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) == 1,
                "loadgen: bad host " + target.host);
  util::require(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                "loadgen: connect to " + target.label() +
                    " failed (is the server running?)");
  return fd;
}

/// Encode request #seq as a protocol line — the canonical encoder the router
/// coalesces on, so loadgen traffic is coalescible by construction.
std::string encode_request_line(const LoadgenOptions& options, std::uint64_t seq) {
  return service::encode_solve_request(make_request(options, seq), seq + 1,
                                       /*include_plan=*/false) +
         "\n";
}

/// Read one line from fd into `line` using `buffer` as carry-over.
bool read_line(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

int run_tcp_closed(const LoadgenOptions& options) {
  Tally tally(options.priority_classes);
  std::atomic<std::uint64_t> next_seq{0};
  RunWindow window;
  window.start_ts = unix_now_s();
  util::WallTimer wall;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < options.concurrency; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_to(options.targets[c % options.targets.size()]);
      std::string buffer, line;
      while (true) {
        const std::uint64_t seq = next_seq.fetch_add(1);
        if (seq >= options.requests) break;
        const std::string request = encode_request_line(options, seq);
        util::WallTimer timer;
        std::size_t sent = 0;
        while (sent < request.size()) {
          const ssize_t n = ::send(fd, request.data() + sent,
                                   request.size() - sent, MSG_NOSIGNAL);
          util::require(n > 0, "loadgen: send() failed");
          sent += static_cast<std::size_t>(n);
        }
        util::require(read_line(fd, buffer, line),
                      "loadgen: server closed the connection");
        const io::JsonValue response = io::JsonValue::parse(line);
        // Same (seed-free) class mapping make_request used when encoding #seq.
        const int priority =
            options.priority_classes > 1
                ? static_cast<int>(seq % options.priority_classes)
                : 0;
        tally.record(priority, response.string_or("outcome", "failed"),
                     timer.elapsed_ms());
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  const double seconds = wall.elapsed_seconds();
  window.end_ts = unix_now_s();

  // One extra connection per target to pull the server-side cache stats —
  // handles both shapes: qulrb_serve answers {"stats":{"cache":{...}}},
  // qulrb_router answers {"stats":{"backend_stats":[{"stats":{...}},...]}}.
  ServerCache cache;
  for (const router::BackendAddress& target : options.targets) {
    try {
      const int fd = connect_to(target);
      const std::string stats_req = "{\"op\":\"stats\"}\n";
      (void)!::send(fd, stats_req.data(), stats_req.size(), MSG_NOSIGNAL);
      std::string buffer, line;
      if (read_line(fd, buffer, line)) {
        const io::JsonValue doc = io::JsonValue::parse(line);
        if (const io::JsonValue* stats = doc.find("stats")) {
          if (const io::JsonValue* c = stats->find("cache")) cache.add(*c);
          if (const io::JsonValue* backends = stats->find("backend_stats")) {
            for (const io::JsonValue& entry : backends->as_array()) {
              if (const io::JsonValue* s = entry.find("stats")) {
                if (const io::JsonValue* c = s->find("cache")) cache.add(*c);
              }
            }
          }
        }
      }
      ::close(fd);
    } catch (const std::exception&) {
      // stats are best-effort
    }
  }
  std::string cache_line;
  if (cache.present) {
    cache_line = "cache:       exact " + std::to_string(cache.exact) +
                 "  retarget " + std::to_string(cache.retarget) + "  miss " +
                 std::to_string(cache.miss) + "  hit_rate " +
                 std::to_string(cache.hit_rate());
  }
  report(tally, seconds, cache_line);
  if (!options.json_out.empty()) {
    write_json_summary(options.json_out, tally, seconds, options.label, cache,
                       window);
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage: qulrb_loadgen [--requests N] [--concurrency C] [--m M] [--n N]\n"
         "                     [--k K] [--variant qcqm1|qcqm2] [--sweeps S]\n"
         "                     [--restarts R] [--deadline-ms X] [--drift]\n"
         "                     [--topo-zipf S] [--seed S] [--workers W]\n"
         "                     [--cache C] [--rate R] [--connect PORT]\n"
         "                     [--targets HOST:PORT,...]\n"
         "                     [--priority-classes N] [--label NAME]\n"
         "                     [--json FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        util::require(i + 1 < argc, "loadgen: missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--requests") options.requests = std::stoul(next());
      else if (arg == "--concurrency") options.concurrency = std::stoul(next());
      else if (arg == "--m") options.m = std::stoul(next());
      else if (arg == "--n") options.n = std::stoll(next());
      else if (arg == "--k") options.k = std::stoll(next());
      else if (arg == "--variant") {
        const std::string v = next();
        util::require(v == "qcqm1" || v == "qcqm2", "loadgen: bad variant");
        options.variant = v == "qcqm1" ? lrp::CqmVariant::kReduced
                                       : lrp::CqmVariant::kFull;
      } else if (arg == "--sweeps") options.sweeps = std::stoul(next());
      else if (arg == "--restarts") options.restarts = std::stoul(next());
      else if (arg == "--deadline-ms") options.deadline_ms = std::stod(next());
      else if (arg == "--drift") options.drift = true;
      else if (arg == "--topo-zipf") options.topo_zipf = std::stod(next());
      else if (arg == "--seed") options.seed = std::stoull(next());
      else if (arg == "--workers") options.workers = std::stoul(next());
      else if (arg == "--cache") options.cache = std::stoul(next());
      else if (arg == "--rate") options.rate = std::stod(next());
      else if (arg == "--connect") {
        options.targets.push_back(
            router::BackendAddress{"127.0.0.1", std::stoi(next())});
      }
      else if (arg == "--targets")
        options.targets = router::parse_backend_list(next());
      else if (arg == "--priority-classes")
        options.priority_classes = std::stoul(next());
      else if (arg == "--label") options.label = next();
      else if (arg == "--json") options.json_out = next();
      else if (arg == "--help") return usage();
      else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        return 2;
      }
    }
    util::require(options.m >= 1 && options.n >= 1, "loadgen: need m, n >= 1");
    util::require(options.priority_classes >= 1,
                  "loadgen: need --priority-classes >= 1");

    if (!options.targets.empty()) {
      util::require(options.rate == 0.0,
                    "loadgen: --rate is in-process only (use --concurrency)");
      return run_tcp_closed(options);
    }
    if (options.rate > 0.0) return run_inproc_open(options);
    return run_inproc_closed(options);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  }
}
