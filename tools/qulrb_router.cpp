// qulrb_router — sharded-serving front door for a fleet of qulrb_serve
// backends.
//
//   qulrb_router --port P --backends 7471,7472[,host:7473...]
//                [--policy random|round-robin|shortest-queue|
//                          shortest-queue-stale|cache-affinity]
//                [--stale-ms D] [--probe-ms X] [--reconnect-ms X]
//                [--vnodes N] [--load-factor F] [--max-retries N]
//                [--no-coalesce] [--seed S] [--metrics-out FILE] [--quiet]
//
// Clients speak the same JSON-lines protocol as qulrb_serve; solves fan out
// across the backends (picked per --policy), identical concurrent solves
// coalesce onto one backend solve, and {"op":"stats"} / {"op":"trace"}
// aggregate the fleet. {"op":"health"} answers from the router's probed
// view without touching the backends; {"op":"metrics"} answers the router's
// own qulrb_router_* Prometheus exposition. {"op":"shutdown"} stops the
// router (the backends keep running — they are managed separately).
//
// Each routed request is forwarded with "rid" (the router's request id) and
// "router_ms" (time spent in the router), so the owning backend's Perfetto
// trace carries the router's identity and admission hop — one routed
// request, one correlated trace.
//
// Observability v3: every --federate-ms the router pulls each backend's
// {"op":"obs"} registry snapshot and folds it bucket-wise into fleet-level
// qulrb_fleet_* families (appended to {"op":"metrics"}); {"op":"obs"} on the
// router returns its own registry, the fleet SLO view, and every backend's
// latest snapshot. The router keeps a flight ring over routed requests and
// runs a fleet SLO engine on end-to-end latency; when a trigger fires (SLO
// burn, deadline-miss burst, backend mark-down) a dedicated incident thread
// assembles one cross-process bundle — router spans plus every backend's
// recent ring via {"op":"flight_dump"} and profile capture via
// {"op":"profile"}, correlated by rid — and writes it to
// --incident-dir/incident-<rid>-<kind>.json.
//
// Continuous profiling: the router runs its own --profile-hz sampler (99 Hz
// default, 0 disables), and {"op":"profile","seconds":S} fans out to every
// backend and answers one fleet profile whose "folded" text roots every
// stack at instance:<backend-label> (instance:router for the router's own
// samples) — feed it straight to flamegraph.pl or speedscope.

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/build_info.hpp"
#include "router/router.hpp"
#include "util/error.hpp"

namespace {

using namespace qulrb;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void on_signal(int signum) { g_signal = signum; }

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking accept/recv must EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dead clients surface as EPIPE, not death
}

bool signalled() { return g_signal != 0; }

struct RouterOptions {
  int port = 0;
  router::Router::Params router;
  std::string metrics_out;
  bool quiet = false;
};

void send_all(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone; responses are best-effort
    }
    if (n == 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

void serve_connection(router::Router& router, int fd,
                      std::atomic<bool>& shutdown) {
  struct timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // A client that stops reading must not wedge backend reader threads that
  // deliver through this socket.
  struct timeval snd_tv;
  snd_tv.tv_sec = 2;
  snd_tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_tv, sizeof(snd_tv));

  // Serialize writes: backend reader threads and this session's own control
  // responses interleave line-atomically.
  auto write_mutex = std::make_shared<std::mutex>();
  const std::uint64_t session = router.register_session(
      [fd, write_mutex](const std::string& line) {
        std::lock_guard<std::mutex> lock(*write_mutex);
        send_all(fd, line);
      });

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !shutdown.load(std::memory_order_relaxed) && !signalled()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty() && !router.handle_client_line(session, line)) {
        shutdown.store(true, std::memory_order_relaxed);
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  router.unregister_session(session);
  ::close(fd);
}

int run(const RouterOptions& options) {
  router::Router router(options.router);
  // The router moves no solver kernels itself — its SIMD level is "scalar".
  obs::register_build_info(router.registry(), obs::build_info("scalar"),
                           "router");
  router.start();

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require(listen_fd >= 0, "router: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  util::require(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "router: bind() failed (port in use?)");
  util::require(::listen(listen_fd, 128) == 0, "router: listen() failed");
  if (!options.quiet) {
    std::cerr << "qulrb_router: listening on 127.0.0.1:" << options.port
              << ", " << options.router.pool.backends.size() << " backend(s), "
              << "policy " << router::to_string(options.router.policy) << "\n";
  }

  std::atomic<bool> shutdown{false};
  std::vector<std::thread> connections;
  std::thread watcher([&] {
    while (!shutdown.load(std::memory_order_relaxed) && !signalled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  });

  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !signalled()) continue;
      break;
    }
    connections.emplace_back(
        [&router, fd, &shutdown] { serve_connection(router, fd, shutdown); });
  }
  shutdown.store(true, std::memory_order_relaxed);
  watcher.join();
  for (auto& t : connections) t.join();

  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out, std::ios::trunc);
    if (out) {
      out << router.metrics_text();
    } else if (!options.quiet) {
      std::cerr << "qulrb_router: cannot write " << options.metrics_out << "\n";
    }
  }
  router.stop();
  return 0;
}

int usage() {
  std::cerr
      << "usage: qulrb_router --port P --backends PORT[,HOST:PORT...]\n"
         "                    [--policy NAME] [--stale-ms D] [--probe-ms X]\n"
         "                    [--reconnect-ms X] [--vnodes N]\n"
         "                    [--load-factor F] [--max-retries N]\n"
         "                    [--no-coalesce] [--seed S]\n"
         "                    [--metrics-out FILE] [--federate-ms X]\n"
         "                    [--no-flight] [--flight-window-s X]\n"
         "                    [--incident-dir DIR] [--slo-latency-ms X]\n"
         "                    [--slo-target X] [--slo-fast-s X]\n"
         "                    [--slo-slow-s X] [--slo-burn-threshold X]\n"
         "                    [--deadline-burst N] [--profile-hz N]\n"
         "                    [--profile-capacity N] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  RouterOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        util::require(i + 1 < argc, "router: missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--port") options.port = std::stoi(next());
      else if (arg == "--backends")
        options.router.pool.backends = router::parse_backend_list(next());
      else if (arg == "--policy")
        options.router.policy = router::parse_policy(next());
      else if (arg == "--stale-ms") options.router.stale_ms = std::stod(next());
      else if (arg == "--probe-ms")
        options.router.pool.probe_interval_ms = std::stod(next());
      else if (arg == "--reconnect-ms")
        options.router.pool.reconnect_ms = std::stod(next());
      else if (arg == "--vnodes")
        options.router.policy_config.vnodes = std::stoul(next());
      else if (arg == "--load-factor")
        options.router.policy_config.load_factor = std::stod(next());
      else if (arg == "--max-retries")
        options.router.max_retries = std::stoul(next());
      else if (arg == "--no-coalesce") options.router.coalesce = false;
      else if (arg == "--seed")
        options.router.policy_config.seed = std::stoull(next());
      else if (arg == "--metrics-out") options.metrics_out = next();
      else if (arg == "--federate-ms")
        options.router.federate_ms = std::stod(next());
      else if (arg == "--no-flight") options.router.flight = false;
      else if (arg == "--flight-window-s")
        options.router.flight_window_s = std::stod(next());
      else if (arg == "--incident-dir")
        options.router.incident_dir = next();
      else if (arg == "--slo-latency-ms")
        options.router.slo.latency_slo_ms = std::stod(next());
      else if (arg == "--slo-target")
        options.router.slo.target = std::stod(next());
      else if (arg == "--slo-fast-s")
        options.router.slo.fast_window_s = std::stod(next());
      else if (arg == "--slo-slow-s")
        options.router.slo.slow_window_s = std::stod(next());
      else if (arg == "--slo-burn-threshold")
        options.router.slo.burn_threshold = std::stod(next());
      else if (arg == "--deadline-burst")
        options.router.slo.deadline_burst = std::stoull(next());
      else if (arg == "--profile-hz")
        options.router.profile_hz = std::stoi(next());
      else if (arg == "--profile-capacity")
        options.router.profile_capacity = std::stoul(next());
      else if (arg == "--quiet") options.quiet = true;
      else if (arg == "--help") return usage();
      else {
        std::cerr << "error: unknown option '" << arg << "'\n";
        return 2;
      }
    }
    util::require(options.port > 0, "router: --port is required");
    util::require(!options.router.pool.backends.empty(),
                  "router: --backends is required");
    install_signal_handlers();
    return run(options);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  }
}
